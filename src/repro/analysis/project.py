"""The whole-program index the semantic (cross-module) rules run on.

Where :class:`~repro.analysis.source.SourceModule` gives a rule one
file's AST, a :class:`ProjectIndex` gives it the *program*: every
``repro`` module parsed, names resolved across ``import`` /
``from ... import`` (absolute *and* relative, chasing ``__init__``
re-exports), a class registry with an approximate MRO, and a
conservative call graph with chain-producing reachability.

The index is deliberately an over-approximation where python's dynamism
forces a choice:

* a ``self.m()`` / ``super().m()`` call resolves through the class
  hierarchy (most-derived definition at or above the receiver class,
  plus every override in its descendants — the receiver's runtime type
  may be any of them);
* an ``obj.m()`` call whose receiver cannot be resolved to a project
  symbol falls back to *every* project method named ``m``;
* a call that resolves to a class is an edge to its ``__init__``.

Over-approximation keeps reachability *sound* for the rules built on it
(a kernel entry point that can reach ``time.time()`` is reported even
when the receiver's type is unknown) at the price of occasional extra
edges.  Everything is constructed and iterated in sorted order, so two
runs over the same tree produce byte-identical results.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.source import SourceModule

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: raised internally when a constant expression cannot be evaluated
class _NotConstant(Exception):
    pass


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: str
    name: str
    node: FuncNode
    cls: Optional[str] = None  #: owning class qualname, if a method

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One top-level class definition."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()  #: canonical base names, best effort
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module of the project plus its resolution context."""

    source: SourceModule
    is_package: bool
    #: names bound by imports (absolute and relative) -> dotted targets
    bindings: Dict[str, str] = field(default_factory=dict)
    #: top-level ``NAME = <expr>`` assignment nodes (for constants)
    const_nodes: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.source.module_name


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as statically possible."""

    #: project function qualnames this call may dispatch to (sorted)
    targets: Tuple[str, ...]
    #: dotted text of the callee when the chain resolved (may be
    #: external, e.g. ``time.time``); ``None`` for dynamic callees
    canonical: Optional[str]
    line: int
    col: int


class ProjectIndex:
    """Modules, symbols, classes and calls of one ``repro`` tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> sorted qualnames of every project method so named
        self.methods_by_name: Dict[str, Tuple[str, ...]] = {}
        #: caller qualname -> resolved call sites, in AST order
        self.calls: Dict[str, Tuple[CallSite, ...]] = {}
        #: module name -> sorted names of project modules it imports
        self.module_imports: Dict[str, Tuple[str, ...]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._mro_cache: Dict[str, Tuple[str, ...]] = {}
        self._const_cache: Dict[Tuple[str, str], object] = {}
        self._reach_cache: Dict[
            Tuple[str, ...], Dict[str, Tuple[str, ...]]
        ] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Iterable[SourceModule]) -> "ProjectIndex":
        """Index ``sources`` (typically every module of one tree)."""
        index = cls()
        ordered = sorted(
            sources, key=lambda s: (s.module_name, s.display_path)
        )
        for source in ordered:
            if source.module_name in index.modules:
                continue  # first (sorted) spelling of a module wins
            index._add_module(source)
        index._resolve_bases()
        for info in index.modules.values():
            index._link_module_imports(info)
        names: Dict[str, List[str]] = {}
        for class_info in index.classes.values():
            for method in class_info.methods.values():
                names.setdefault(method.name, []).append(method.qualname)
        index.methods_by_name = {
            name: tuple(sorted(quals)) for name, quals in names.items()
        }
        for qualname in sorted(index.functions):
            index.calls[qualname] = index._resolve_calls(
                index.functions[qualname]
            )
        return index

    def _add_module(self, source: SourceModule) -> None:
        info = ModuleInfo(
            source=source, is_package=source.path.stem == "__init__"
        )
        self.modules[info.name] = info
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        info.bindings[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        info.bindings[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.bindings[bound] = f"{base}.{alias.name}"
        for statement in source.tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = f"{info.name}.{statement.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=info.name,
                    name=statement.name,
                    node=statement,
                )
            elif isinstance(statement, ast.ClassDef):
                self._add_class(info, statement)
            elif isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1 and isinstance(statement.targets[0], ast.Name):
                info.const_nodes[statement.targets[0].id] = statement.value
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ) and statement.value is not None:
                info.const_nodes[statement.target.id] = statement.value

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.name}.{node.name}"
        class_info = ClassInfo(
            qualname=qualname,
            module=info.name,
            name=node.name,
            node=node,
        )
        for statement in node.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                method_qual = f"{qualname}.{statement.name}"
                method = FunctionInfo(
                    qualname=method_qual,
                    module=info.name,
                    name=statement.name,
                    node=statement,
                    cls=qualname,
                )
                class_info.methods[statement.name] = method
                self.functions[method_qual] = method
        self.classes[qualname] = class_info

    @staticmethod
    def _import_base(
        info: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        """Absolute dotted base of an import-from, resolving relativity."""
        if not node.level:
            return node.module
        package = (
            info.name
            if info.is_package
            else info.name.rsplit(".", 1)[0]
            if "." in info.name
            else None
        )
        for _ in range(node.level - 1):
            if package is None or "." not in package:
                return None
            package = package.rsplit(".", 1)[0]
        if package is None:
            return None
        return f"{package}.{node.module}" if node.module else package

    def _resolve_bases(self) -> None:
        for qualname in sorted(self.classes):
            class_info = self.classes[qualname]
            bases: List[str] = []
            for base_node in class_info.node.bases:
                canonical = self.resolve_expr(
                    class_info.module, base_node
                )
                if canonical is not None:
                    bases.append(canonical)
                    self._subclasses.setdefault(canonical, set()).add(
                        qualname
                    )
            class_info.bases = tuple(bases)

    def _link_module_imports(self, info: ModuleInfo) -> None:
        imported: Set[str] = set()
        for target in info.bindings.values():
            dotted = target
            while dotted:
                if dotted in self.modules and dotted != info.name:
                    imported.add(dotted)
                    break
                if "." not in dotted:
                    break
                dotted = dotted.rsplit(".", 1)[0]
        self.module_imports[info.name] = tuple(sorted(imported))

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def canonicalize(self, dotted: str) -> str:
        """Chase import re-exports until ``dotted`` stops moving."""
        seen: Set[str] = set()
        while dotted not in seen:
            seen.add(dotted)
            module, rest = self._split_module(dotted)
            if module is None or not rest:
                return dotted
            head, _, tail = rest.partition(".")
            binding = self.modules[module].bindings.get(head)
            if binding is None:
                return dotted
            dotted = f"{binding}.{tail}" if tail else binding
        return dotted

    def _split_module(
        self, dotted: str
    ) -> Tuple[Optional[str], str]:
        """Longest known-module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return None, dotted

    def resolve_expr(
        self, module: str, node: ast.expr
    ) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain in ``module``."""
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        info = self.modules.get(module)
        head = current.id
        if info is not None:
            if head in info.bindings:
                head = info.bindings[head]
            else:
                local = f"{module}.{head}"
                if (
                    local in self.functions
                    or local in self.classes
                    or head in info.const_nodes
                ):
                    head = local
        dotted = ".".join([head, *reversed(parts)]) if parts else head
        return self.canonicalize(dotted)

    def constant(self, module: str, name: str) -> object:
        """Statically evaluated top-level constant, or ``None``.

        Handles literals plus Name/Attribute references to other
        constants (within the module or through imports) — enough to
        read registries like ``SCHEMA_FIELDS`` whose keys are named
        schema constants.
        """
        key = (module, name)
        if key in self._const_cache:
            return self._const_cache[key]
        self._const_cache[key] = None  # cycle guard
        info = self.modules.get(module)
        if info is None or name not in info.const_nodes:
            return None
        try:
            value = self._eval_const(module, info.const_nodes[name])
        except _NotConstant:
            value = None
        self._const_cache[key] = value
        return value

    def _eval_const(self, module: str, node: ast.expr) -> object:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(
                self._eval_const(module, item) for item in node.elts
            )
        if isinstance(node, ast.Dict):
            result: Dict[object, object] = {}
            for key_node, value_node in zip(node.keys, node.values):
                if key_node is None:
                    raise _NotConstant()
                result[self._eval_const(module, key_node)] = (
                    self._eval_const(module, value_node)
                )
            return result
        if isinstance(node, (ast.Name, ast.Attribute)):
            canonical = self.resolve_expr(module, node)
            if canonical is None:
                raise _NotConstant()
            owner, _, symbol = canonical.rpartition(".")
            if not owner:
                raise _NotConstant()
            value = self.constant(owner, symbol)
            if value is None:
                raise _NotConstant()
            return value
        raise _NotConstant()

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def mro(self, qualname: str) -> Tuple[str, ...]:
        """Approximate linearization: DFS over bases, first-seen wins.

        Not C3 — diamond order may differ from python's — but method
        *membership* along the chain matches, which is what resolution
        needs.  Unknown (external) base names appear in the chain too.
        """
        cached = self._mro_cache.get(qualname)
        if cached is not None:
            return cached
        out: List[str] = []
        visiting: Set[str] = set()

        def visit(name: str) -> None:
            if name in visiting or name in out:
                return
            visiting.add(name)
            out.append(name)
            info = self.classes.get(name)
            if info is not None:
                for base in info.bases:
                    visit(base)
            visiting.discard(name)

        visit(qualname)
        result = tuple(out)
        self._mro_cache[qualname] = result
        return result

    def descendants(self, qualname: str) -> Tuple[str, ...]:
        """Transitive subclasses of a class (by canonical name)."""
        seen: Set[str] = set()
        frontier = deque([qualname])
        while frontier:
            current = frontier.popleft()
            for sub in self._subclasses.get(current, ()):
                if sub not in seen:
                    seen.add(sub)
                    frontier.append(sub)
        return tuple(sorted(seen))

    def find_method(
        self, cls_qualname: str, method: str
    ) -> Optional[str]:
        """Most-derived definition of ``method`` in ``cls``'s MRO."""
        for name in self.mro(cls_qualname):
            info = self.classes.get(name)
            if info is not None and method in info.methods:
                return info.methods[method].qualname
        return None

    def find_method_after(
        self, cls_qualname: str, owner: str, method: str
    ) -> Optional[str]:
        """``super()`` resolution: next definition past ``owner``."""
        chain = self.mro(cls_qualname)
        try:
            start = chain.index(owner) + 1
        except ValueError:
            start = 1
        for name in chain[start:]:
            info = self.classes.get(name)
            if info is not None and method in info.methods:
                return info.methods[method].qualname
        return None

    # ------------------------------------------------------------------
    # call graph
    # ------------------------------------------------------------------
    def _resolve_calls(self, fn: FunctionInfo) -> Tuple[CallSite, ...]:
        sites: List[CallSite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            site = self._resolve_call(fn, node)
            if site is not None:
                sites.append(site)
        return tuple(sites)

    def _resolve_call(
        self, fn: FunctionInfo, node: ast.Call
    ) -> Optional[CallSite]:
        func = node.func
        targets: Set[str] = set()
        canonical: Optional[str] = None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and fn.cls is not None
            ):
                targets |= self._self_targets(fn.cls, func.attr)
            elif (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and fn.cls is not None
            ):
                up = self.find_method_after(fn.cls, fn.cls, func.attr)
                if up is not None:
                    targets.add(up)
            else:
                canonical = self.resolve_expr(fn.module, func)
                internal = self._symbol_targets(canonical)
                if internal:
                    targets |= internal
                else:
                    # unknown receiver: every project method so named
                    targets |= set(
                        self.methods_by_name.get(func.attr, ())
                    )
        elif isinstance(func, ast.Name):
            canonical = self.resolve_expr(fn.module, func)
            targets |= self._symbol_targets(canonical)
        if not targets and canonical is None:
            return None
        return CallSite(
            targets=tuple(sorted(targets)),
            canonical=canonical,
            line=node.lineno,
            col=node.col_offset,
        )

    def _self_targets(self, cls_qualname: str, method: str) -> Set[str]:
        """``self.m()``: the MRO definition plus descendant overrides."""
        targets: Set[str] = set()
        primary = self.find_method(cls_qualname, method)
        if primary is not None:
            targets.add(primary)
        for sub in self.descendants(cls_qualname):
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                targets.add(info.methods[method].qualname)
        if not targets:
            targets |= set(self.methods_by_name.get(method, ()))
        return targets

    def _symbol_targets(self, canonical: Optional[str]) -> Set[str]:
        """Project functions a canonical dotted name denotes."""
        if canonical is None:
            return set()
        if canonical in self.functions:
            return {canonical}
        if canonical in self.classes:
            init = self.find_method(canonical, "__init__")
            return {init} if init is not None else set()
        return set()

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self, entries: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure: reached qualname -> shortest chain from an entry.

        Chains start at the entry point and end at the reached function.
        Entries not in the index are ignored.  Deterministic: entries
        are visited sorted and call sites in AST order.
        """
        key = tuple(sorted(set(entries)))
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        chains: Dict[str, Tuple[str, ...]] = {}
        frontier: deque[str] = deque()
        for entry in key:
            if entry in self.functions:
                chains[entry] = (entry,)
                frontier.append(entry)
        while frontier:
            current = frontier.popleft()
            for site in self.calls.get(current, ()):
                for target in site.targets:
                    if target not in chains:
                        chains[target] = chains[current] + (target,)
                        frontier.append(target)
        self._reach_cache[key] = chains
        return chains

    # ------------------------------------------------------------------
    # class-view closures (used by the parity/lost-wake rules)
    # ------------------------------------------------------------------
    def method_closure(
        self, cls_qualname: str, start: str
    ) -> Tuple[str, ...]:
        """Definitions reachable from ``cls.start()`` through ``self``.

        Unlike the global call graph, resolution here is *view-aware*:
        every ``self.m()`` resolves in ``cls``'s own MRO (no descendant
        overrides), and ``super().m()`` resolves past the def's owning
        class in that same MRO — i.e. what actually runs on an instance
        of exactly ``cls``.
        """
        start_def = self.find_method(cls_qualname, start)
        if start_def is None:
            return ()
        seen: Set[str] = {start_def}
        frontier = deque([start_def])
        while frontier:
            fn = self.functions[frontier.popleft()]
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                receiver = node.func.value
                target: Optional[str] = None
                if isinstance(receiver, ast.Name) and receiver.id in (
                    "self",
                    "cls",
                ):
                    target = self.find_method(
                        cls_qualname, node.func.attr
                    )
                elif (
                    isinstance(receiver, ast.Call)
                    and isinstance(receiver.func, ast.Name)
                    and receiver.func.id == "super"
                    and fn.cls is not None
                ):
                    target = self.find_method_after(
                        cls_qualname, fn.cls, node.func.attr
                    )
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return tuple(sorted(seen))


def repro_roots(paths: Iterable[Path]) -> List[Path]:
    """Innermost ``repro`` package directories containing ``paths``."""
    roots: Set[Path] = set()
    for path in paths:
        resolved = path.resolve()
        parts = resolved.parts
        anchor = None
        for index, part in enumerate(parts[:-1]):
            if part == "repro":
                anchor = index
        if anchor is not None:
            roots.add(Path(*parts[: anchor + 1]))
    return sorted(roots)
