"""The lint engine: gather files, run rules, partition the results.

:func:`lint_paths` is the single entry point used by the CLI and the
test suite.  It walks the given files/directories, parses each python
file once, runs every (selected) rule over it, then partitions raw
findings three ways:

* **suppressed** — an inline ``# reprolint: ignore[CODE] reason``
  comment on the finding's line waives it;
* **baselined** — the finding's fingerprint appears in the checked-in
  baseline of grandfathered findings;
* **new** — everything else; these fail the gate.

Files that do not parse surface as ``REP000`` findings (not
suppressible — a file the linter cannot read is a file the invariants
cannot be checked in), and results are sorted by path/line/code so
output is stable across filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import (
    Finding,
    assign_occurrences,
    scan_suppressions,
)
from repro.analysis.rules import Rule, all_rules
from repro.analysis.source import SourceModule

#: directory names never descended into
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build",
     "dist", ".venv", "node_modules"}
)

#: code reserved for files the linter cannot parse
PARSE_ERROR_CODE = "REP000"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    checked_files: int = 0
    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when the gate passes, 1 when new findings exist."""
        return 1 if self.new else 0

    @property
    def all_findings(self) -> List[Finding]:
        """Every finding regardless of partition, in report order."""
        return sorted(
            self.new + self.suppressed + self.baselined,
            key=lambda f: (f.path, f.line, f.code),
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(
                part in SKIP_DIRS or part.endswith(".egg-info")
                for part in candidate.parts
            ):
                continue
            yield candidate


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Path as reported in findings: relative to ``root`` if possible."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to check.
    rules:
        Rule instances to run; default is every registered rule.
    baseline:
        Fingerprints of grandfathered findings (see
        :mod:`repro.analysis.baseline`).
    root:
        Directory findings' paths are reported relative to (default:
        the current working directory).
    """
    active_rules = list(rules) if rules is not None else all_rules()
    baseline = baseline or set()
    root = root if root is not None else Path.cwd()
    result = LintResult()

    for file_path in iter_python_files(paths):
        display = _display_path(file_path, root)
        try:
            module = SourceModule.parse(file_path, display_path=display)
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            result.new.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"cannot parse file: {error}",
                    hint="fix the syntax error; invariants of an "
                    "unparseable file cannot be checked",
                )
            )
            result.checked_files += 1
            continue
        result.checked_files += 1

        raw: List[Finding] = []
        for rule in active_rules:
            raw.extend(rule.check(module))
        raw.sort(key=lambda f: (f.line, f.col, f.code))
        raw = assign_occurrences(raw)

        suppressions = scan_suppressions(module.text)
        for finding in raw:
            waiver = suppressions.get(finding.line)
            if waiver is not None and finding.code in waiver.codes:
                result.suppressed.append(finding)
            elif finding.fingerprint in baseline:
                result.baselined.append(finding)
            else:
                result.new.append(finding)

    result.new.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
