"""The lint engine: gather files, run rules, partition the results.

:func:`lint_paths` is the single entry point used by the CLI and the
test suite.  It walks the given files/directories, parses each python
file once, runs every (selected) rule over it, then partitions raw
findings three ways:

* **suppressed** — an inline ``# reprolint: ignore[CODE] reason``
  comment on the finding's line waives it;
* **baselined** — the finding's fingerprint appears in the checked-in
  baseline of grandfathered findings;
* **new** — everything else; these fail the gate.

After the per-module pass the engine builds one
:class:`~repro.analysis.project.ProjectIndex` over the *whole*
``repro`` tree containing the linted files — parsing any modules the
lint selection skipped, so cross-module rules stay sound under
``--changed-only`` — and runs every rule's ``check_project`` hook over
it.  Semantic findings are reported only for files in the lint
selection, and flow through the same suppression/baseline partitioning.

Files that do not parse surface as ``REP000`` findings (not
suppressible — a file the linter cannot read is a file the invariants
cannot be checked in), and results are sorted by path/line/code so
output is stable across filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import (
    Finding,
    Suppression,
    assign_occurrences,
    scan_suppressions,
)
from repro.analysis.project import ProjectIndex, repro_roots
from repro.analysis.rules import Rule, all_rules
from repro.analysis.source import SourceModule

#: directory names never descended into
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build",
     "dist", ".venv", "node_modules"}
)

#: code reserved for files the linter cannot parse
PARSE_ERROR_CODE = "REP000"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    checked_files: int = 0
    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when the gate passes, 1 when new findings exist."""
        return 1 if self.new else 0

    @property
    def all_findings(self) -> List[Finding]:
        """Every finding regardless of partition, in report order."""
        return sorted(
            self.new + self.suppressed + self.baselined,
            key=lambda f: (f.path, f.line, f.code),
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(
                part in SKIP_DIRS or part.endswith(".egg-info")
                for part in candidate.parts
            ):
                continue
            yield candidate


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Path as reported in findings: relative to ``root`` if possible."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to check.
    rules:
        Rule instances to run; default is every registered rule.
    baseline:
        Fingerprints of grandfathered findings (see
        :mod:`repro.analysis.baseline`).
    root:
        Directory findings' paths are reported relative to (default:
        the current working directory).
    """
    active_rules = list(rules) if rules is not None else all_rules()
    baseline = baseline or set()
    root = root if root is not None else Path.cwd()
    result = LintResult()

    parsed: List[SourceModule] = []
    suppressions_by_path: Dict[str, Dict[int, Suppression]] = {}

    def partition(finding: Finding) -> None:
        waiver = suppressions_by_path.get(finding.path, {}).get(
            finding.line
        )
        if waiver is not None and finding.code in waiver.codes:
            result.suppressed.append(finding)
        elif finding.fingerprint in baseline:
            result.baselined.append(finding)
        else:
            result.new.append(finding)

    for file_path in iter_python_files(paths):
        display = _display_path(file_path, root)
        try:
            module = SourceModule.parse(file_path, display_path=display)
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            result.new.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"cannot parse file: {error}",
                    hint="fix the syntax error; invariants of an "
                    "unparseable file cannot be checked",
                )
            )
            result.checked_files += 1
            continue
        result.checked_files += 1
        parsed.append(module)
        suppressions_by_path[module.display_path] = scan_suppressions(
            module.text
        )

        raw: List[Finding] = []
        for rule in active_rules:
            raw.extend(rule.check(module))
        raw.sort(key=lambda f: (f.line, f.col, f.code))
        for finding in assign_occurrences(raw):
            partition(finding)

    project = _build_project(parsed, root)
    if project is not None:
        linted = {module.display_path for module in parsed}
        semantic: List[Finding] = []
        for rule in active_rules:
            semantic.extend(
                finding
                for finding in rule.check_project(project)
                if finding.path in linted
            )
        semantic.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        for finding in assign_occurrences(semantic):
            partition(finding)

    result.new.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


def _build_project(
    parsed: Sequence[SourceModule], root: Optional[Path]
) -> Optional[ProjectIndex]:
    """Index the full ``repro`` tree(s) the linted files belong to.

    Modules outside the lint selection are parsed here (and silently
    skipped if unparseable — their own lint runs report ``REP000``), so
    cross-module rules see the whole program even when only a few files
    are being linted.
    """
    sources = [
        module
        for module in parsed
        if module.module_name.startswith("repro")
    ]
    if not sources:
        return None
    have = {module.path.resolve() for module in sources}
    for package_root in repro_roots(module.path for module in sources):
        for file_path in iter_python_files([package_root]):
            resolved = file_path.resolve()
            if resolved in have:
                continue
            have.add(resolved)
            display = _display_path(file_path, root)
            try:
                extra = SourceModule.parse(
                    file_path, display_path=display
                )
            except (SyntaxError, ValueError, OSError):
                continue
            if extra.module_name.startswith("repro"):
                sources.append(extra)
    return ProjectIndex.build(sources)
