"""The reprolint rule registry and the REP001-REP014 invariant rules.

Each rule guards one contract the reproduction's results depend on but
that nothing else enforces at rest (see ``docs/static-analysis.md``):

=======  ==========================================================
REP001   all randomness flows through :mod:`repro.sim.rng`
REP002   wall-clock reads stay out of simulation code
REP003   no ordering-sensitive iteration over unordered collections
REP004   pool-submitted callables are module-level (picklable)
REP005   metric calls stay behind a captured ``metrics.enabled`` guard
REP006   records handed to JSONL sink writers carry a ``schema`` tag
REP007   tick-path link drains stay behind a cheap emptiness guard
REP008   packed-path modules never construct ``Flit`` objects
REP009   tracer/profiler emits stay behind an enabled/attached guard
REP010   dormancy-state mutations register a kernel wake
REP011   packed and object data planes emit identical telemetry names
REP012   literal sink records match their registered schema fields
REP013   result-store file I/O flows through the journal module only
REP014   farm process/pipe machinery stays in the transport module
=======  ==========================================================

A rule is a class with a ``code``, a one-line ``summary``, a ``hint``
shown next to each finding, a docstring explaining the invariant, and a
``check`` generator over one :class:`~repro.analysis.source.SourceModule`.
Rules come in two layers: the *syntactic* layer sees one module at a
time through ``check``; the *semantic* layer additionally implements
``check_project`` over the whole-program
:class:`~repro.analysis.project.ProjectIndex` (REP001/REP002 use it for
kernel-reachability chains; REP010-REP012 are purely cross-module).
Register new rules with the :func:`register` decorator; the engine and
CLI discover them through :func:`all_rules`.
"""

from __future__ import annotations

import ast
import inspect
import re
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, ProjectIndex
from repro.analysis.source import SourceModule

#: packages whose modules run inside the cycle loop; determinism rules
#: (REP002/REP003/REP005) apply here
KERNEL_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.switches",
    "repro.network",
    "repro.flits",
    "repro.routing",
    "repro.host",
    "repro.traffic",
)

#: the only modules allowed to read the wall clock (REP002): telemetry
#: and the pool timing layer measure the *process*, never the simulation
WALLCLOCK_ALLOWED: Tuple[str, ...] = (
    "repro.obs",
    "repro.experiments.parallel",
)

#: the one module allowed to touch python's ``random`` machinery (REP001)
RNG_HOME = "repro.sim.rng"

#: the link implementation itself is exempt from REP007 (its methods
#: *are* the drain primitives the rule protects)
LINK_HOME = "repro.switches.link"

#: modules that must stay ``Flit``-object-free (REP008): the packed
#: data plane's hot path moves flit coordinates, never flit objects
PACKED_MODULES: Tuple[str, ...] = (
    "repro.switches.packed_central",
    "repro.switches.packed_input",
    "repro.host.packed_interface",
)

#: the tracer implementation itself is exempt from REP009 (its ``emit``
#: *is* the guarded primitive the rule protects)
TRACE_HOME = "repro.sim.trace"

#: the result-store package and its single file-I/O module (REP013):
#: every byte the store persists flows through the journal, keeping the
#: crash-safety story (O_EXCL segment claims, torn-tail recovery)
#: auditable in one place
STORE_PACKAGE = "repro.store"
JOURNAL_HOME = "repro.store.journal"

#: the run-farm package and its single process/pipe module (REP014):
#: every subprocess spawn, pool construction and raw byte moved on the
#: farm's behalf flows through the transport, keeping the worker
#: failure model (EOF, torn frames, closed pipes) auditable in one place
FARM_PACKAGE = "repro.farm"
TRANSPORT_HOME = "repro.farm.transport"


class Rule(ABC):
    """One invariant check over a parsed module."""

    code: str = "REP000"
    summary: str = ""
    hint: str = ""

    @abstractmethod
    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield a :class:`Finding` per violation in ``module``."""

    def check_project(
        self, project: ProjectIndex
    ) -> Iterator[Finding]:
        """Yield cross-module findings over the whole-program index.

        The engine calls this once per run, after the per-module pass,
        with an index covering the *entire* ``repro`` tree (even under
        ``--changed-only``).  The default is no semantic layer.
        """
        return iter(())

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        chain: Tuple[str, ...] = (),
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            code=self.code,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
            hint=self.hint,
            line_text=module.line_text(line),
            chain=chain,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


class UnknownRuleError(ValueError):
    """A ``--select`` list named rule codes that do not exist."""


def all_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instances of every registered rule (or the selected codes).

    Raises :class:`UnknownRuleError` (with the unknown codes *and* the
    available ones in the message) rather than silently linting with a
    partial or empty rule set.
    """
    codes: List[str]
    if select is None:
        codes = sorted(_REGISTRY)
    else:
        unknown = sorted({c for c in select if c not in _REGISTRY})
        if unknown:
            raise UnknownRuleError(
                f"unknown rule code(s): {', '.join(unknown)} "
                f"(available: {', '.join(sorted(_REGISTRY))})"
            )
        codes = list(dict.fromkeys(select))
        if not codes:
            raise UnknownRuleError(
                "empty rule selection (available: "
                + ", ".join(sorted(_REGISTRY))
                + ")"
            )
    return [_REGISTRY[code]() for code in codes]


def rule_catalog() -> List[Tuple[str, str, str]]:
    """``(code, summary, docstring)`` of every registered rule."""
    catalog: List[Tuple[str, str, str]] = []
    for code in sorted(_REGISTRY):
        rule_class = _REGISTRY[code]
        catalog.append(
            (
                code,
                rule_class.summary,
                inspect.cleandoc(rule_class.__doc__ or ""),
            )
        )
    return catalog


def _mentions_guard(test: ast.expr) -> bool:
    """True when ``test`` references an observability guard positively.

    A guard reference is a name or attribute whose identifier contains
    ``obs`` or is exactly ``enabled`` (the ``self._obs = metrics.enabled``
    convention).  References under a ``not`` are *negative* — the guarded
    branch is the one where metrics are off — and do not count.
    """
    negated: Set[int] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            for inner in ast.walk(node.operand):
                negated.add(id(inner))
    for node in ast.walk(test):
        identifier = None
        if isinstance(node, ast.Attribute):
            identifier = node.attr
        elif isinstance(node, ast.Name):
            identifier = node.id
        if identifier is None:
            continue
        if ("obs" in identifier or identifier == "enabled") and (
            id(node) not in negated
        ):
            return True
    return False


def _mentions_guard_negatively(test: ast.expr) -> bool:
    """True for tests like ``not self._obs`` (early-return guards)."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _mentions_guard(test.operand)
    return False


def _in_packages(module_name: str, packages: Sequence[str]) -> bool:
    """Dotted-module membership test (module or any submodule)."""
    for package in packages:
        if module_name == package or module_name.startswith(
            package + "."
        ):
            return True
    return False


def _kernel_entries(project: ProjectIndex) -> List[str]:
    """Kernel-path entry points for reachability rules.

    The simulator's run loop (``Simulator.run``/``run_until``/``step``),
    every ``tick`` method on a kernel-package class (components only
    execute through ticks), and every method of the link module (the
    object and packed span transports components drain) — anything a
    simulated cycle can execute starts at one of these.
    """
    entries: List[str] = []
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        if fn.cls is None:
            continue
        if fn.module == "repro.sim.kernel" and fn.name in (
            "run", "run_until", "step"
        ):
            entries.append(qualname)
        elif fn.name == "tick" and _in_packages(
            fn.module, KERNEL_PACKAGES
        ):
            entries.append(qualname)
        elif fn.module == LINK_HOME and not fn.name.startswith("__"):
            entries.append(qualname)
    return entries


def _chain_display(chain: Sequence[str]) -> str:
    """Render a call chain compactly (``repro.`` prefixes dropped)."""
    def short(name: str) -> str:
        return name[6:] if name.startswith("repro.") else name

    return " -> ".join(short(name) for name in chain)


class _KernelReachabilityMixin:
    """Shared transitive layer for REP001/REP002.

    Walks every function reachable from the kernel entry points and
    reports banned *sink* calls with the full call chain.  Unlike the
    syntactic layer, the traversal ignores the per-module allowlists
    (``repro.sim.rng``, ``repro.obs`` ...): an allowlisted module may
    use its primitive, but the kernel must never *reach* it.
    """

    def sink(
        self, module: SourceModule, node: ast.Call
    ) -> Optional[str]:
        """Describe ``node`` if it is a banned sink, else ``None``."""
        raise NotImplementedError

    def check_project(
        self, project: ProjectIndex
    ) -> Iterator[Finding]:
        assert isinstance(self, Rule)
        chains = project.reachable_from(_kernel_entries(project))
        for qualname in sorted(chains):
            fn = project.functions[qualname]
            info = project.modules.get(fn.module)
            if info is None:
                continue
            source = info.source
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                described = self.sink(source, node)
                if described is None:
                    continue
                chain = chains[qualname] + (
                    project.resolve_expr(fn.module, node.func)
                    or "<dynamic>",
                )
                yield self.finding(
                    source,
                    node,
                    f"{described} is reachable from kernel entry "
                    f"point {chain[0]}: {_chain_display(chain)}",
                    chain=chain,
                )


@register
class NoUnseededRandomness(_KernelReachabilityMixin, Rule):
    """REP001 — all stochastic behaviour flows through ``repro.sim.rng``.

    The parallel execution engine's jobs=N == jobs=1 guarantee and the
    golden snapshots both require that every random draw be derived from
    the config seed.  Calling the ``random`` module's global functions
    (hidden shared state), constructing an *unseeded* ``random.Random()``
    (wall-clock entropy), or touching ``numpy.random`` anywhere outside
    :mod:`repro.sim.rng` silently breaks that chain.  Constructing
    ``random.Random(explicit_seed)`` is allowed: it is deterministic and
    is how config-seeded builders (e.g. the irregular topology
    generator) stay reproducible without a simulator handy.

    Semantic layer: the same banned calls are additionally reported —
    with the full call chain — in *any* function reachable from a kernel
    entry point (``Simulator.run*``, component ``tick`` hooks, the link
    span paths), including inside :mod:`repro.sim.rng` itself, where the
    syntactic layer does not look.
    """

    code = "REP001"
    summary = (
        "random/numpy.random use outside sim/rng.py breaks seeded replay"
    )
    hint = (
        "draw from a named stream of repro.sim.rng.RngStreams (or a "
        "random.Random seeded from explicit config)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module_name == RNG_HOME:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in ("Random", "SystemRandom"):
                            yield self.finding(
                                module,
                                node,
                                f"import of global-state random API "
                                f"random.{alias.name}",
                            )
                elif node.module and (
                    node.module == "numpy.random"
                    or node.module.startswith("numpy.random.")
                ):
                    yield self.finding(
                        module, node, "import from numpy.random"
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("numpy.random"):
                        yield self.finding(
                            module, node, "import of numpy.random"
                        )
            elif isinstance(node, ast.Call):
                described = self.sink(module, node)
                if described is not None:
                    yield self.finding(module, node, described)

    def sink(
        self, module: SourceModule, node: ast.Call
    ) -> Optional[str]:
        """Describe a banned random-API call, else ``None``."""
        canonical = module.imports.resolve(node.func)
        if canonical is None:
            return None
        if canonical.startswith("numpy.random."):
            return f"call to {canonical}"
        if canonical == "random.SystemRandom":
            return "random.SystemRandom draws OS entropy"
        if canonical == "random.Random" and not (
            node.args or node.keywords
        ):
            return (
                "unseeded random.Random() seeds itself from the "
                "OS / wall clock"
            )
        if (
            canonical.startswith("random.")
            and canonical.count(".") == 1
            and canonical != "random.Random"
        ):
            return f"call to global-state random API {canonical}"
        return None


@register
class NoWallClockInSimulation(_KernelReachabilityMixin, Rule):
    """REP002 — simulated time and wall time never mix.

    Simulation results must be a pure function of config and seed.  A
    wall-clock read (``time.time``, ``time.perf_counter``,
    ``datetime.now`` ...) anywhere in the ``repro`` package can leak
    host-machine timing into results or artifacts; only the telemetry
    layer (``repro.obs``) and the pool timing layer
    (``repro.experiments.parallel``), which measure the *process* rather
    than the simulation, may read it.  This subsumes the kernel-path
    packages (``sim/``, ``switches/``, ``network/``, ``flits/``,
    ``routing/``, ``host/``, ``traffic/``), where a wall-clock read
    would additionally perturb cycle accounting.

    Semantic layer: wall-clock calls are additionally reported — with
    the full call chain — in any function reachable from a kernel entry
    point, *including* inside the allowlisted ``repro.obs`` /
    ``repro.experiments.parallel`` modules: those may time the process
    around a run, but the cycle loop must never reach them.
    """

    code = "REP002"
    summary = "wall-clock read outside repro.obs / experiments.parallel"
    hint = (
        "use simulator cycles for model time; for process timing call "
        "helpers in repro.experiments.parallel or repro.obs"
    )

    #: wall-clock reads, always flagged
    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    #: flagged only when called with no arguments (zero-arg form reads
    #: the current time; with an explicit argument they are pure)
    BANNED_ZERO_ARG = frozenset(
        {"time.gmtime", "time.localtime", "time.strftime"}
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.module_name.startswith("repro"):
            return
        if module.in_package(*WALLCLOCK_ALLOWED):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            described = self.sink(module, node)
            if described is not None:
                yield self.finding(module, node, described)

    def sink(
        self, module: SourceModule, node: ast.Call
    ) -> Optional[str]:
        """Describe a wall-clock read, else ``None``."""
        canonical = module.imports.resolve(node.func)
        if canonical is None:
            return None
        if canonical in self.BANNED:
            return f"wall-clock call {canonical}()"
        if canonical in self.BANNED_ZERO_ARG and not node.args:
            return f"zero-argument {canonical}() reads the current time"
        return None


def _is_unordered_expr(
    node: ast.expr, module: SourceModule, set_locals: Set[str]
) -> Optional[str]:
    """Describe ``node`` if it evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        canonical = module.imports.resolve(node.func)
        if canonical in ("set", "frozenset"):
            return f"{canonical}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        ):
            return ".keys()"
    if isinstance(node, ast.Name) and node.id in set_locals:
        return f"the set-typed local {node.id!r}"
    return None


def _set_typed_locals(func: ast.AST) -> Set[str]:
    """Names assigned an (unsorted) set value in this function scope."""
    names: Set[str] = set()

    def scan(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Assign):
                value_is_set = isinstance(
                    child.value, (ast.Set, ast.SetComp)
                ) or (
                    isinstance(child.value, ast.Call)
                    and isinstance(child.value.func, ast.Name)
                    and child.value.func.id in ("set", "frozenset")
                )
                if value_is_set:
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                annotation: ast.expr = child.annotation
                if isinstance(annotation, ast.Subscript):
                    annotation = annotation.value
                if isinstance(annotation, ast.Name) and annotation.id in (
                    "set", "frozenset", "Set", "FrozenSet"
                ):
                    names.add(child.target.id)
            scan(child)

    scan(func)
    return names


@register
class NoUnorderedIteration(Rule):
    """REP003 — no ordering-sensitive iteration over unordered collections.

    Set iteration order depends on element hashes — for strings, on
    ``PYTHONHASHSEED`` — so a ``for`` loop over a bare set in a kernel
    path (arbitration order, replication order, drain order) produces
    results that differ between interpreter invocations even with a
    fixed config seed.  The rule flags, inside the kernel-path packages:
    direct iteration over set literals / ``set()`` / ``.keys()`` calls /
    set-typed locals; materialising them with ``list()`` or ``tuple()``;
    first-element extraction via ``next(iter(...))``; and zero-argument
    ``.pop()`` on a set-typed local.  Order-insensitive folds (``len``,
    ``sum``, ``min``, ``max``, ``any``, ``all``, membership tests) and
    anything wrapped in ``sorted(...)`` are fine.
    """

    code = "REP003"
    summary = "ordering-sensitive iteration over an unordered collection"
    hint = (
        "wrap the collection in sorted(...) (or keep a deterministic "
        "list alongside the set) before iterating in a kernel path"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(*KERNEL_PACKAGES):
            return
        scope_locals: Dict[int, Set[str]] = {}

        def locals_for(node: ast.AST) -> Set[str]:
            func = module.enclosing_function(node)
            if func is None:
                return set()
            cached = scope_locals.get(id(func))
            if cached is None:
                cached = scope_locals[id(func)] = _set_typed_locals(func)
            return cached

        for node in ast.walk(module.tree):
            iterables: List[ast.expr] = []
            context = ""
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables = [node.iter]
                context = "for-loop over"
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp),
            ):
                iterables = [gen.iter for gen in node.generators]
                context = "comprehension over"
            elif isinstance(node, ast.Call):
                canonical = module.imports.resolve(node.func)
                if canonical in ("list", "tuple") and len(node.args) == 1:
                    iterables = [node.args[0]]
                    context = f"{canonical}() materialisation of"
                elif (
                    canonical == "next"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                    and module.imports.resolve(node.args[0].func) == "iter"
                    and node.args[0].args
                ):
                    iterables = [node.args[0].args[0]]
                    context = "first-element extraction from"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in locals_for(node)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"arbitrary-order .pop() on set-typed local "
                        f"{node.func.value.id!r}",
                    )
                    continue
            for iterable in iterables:
                described = _is_unordered_expr(
                    iterable, module, locals_for(node)
                )
                if described is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{context} {described} iterates in hash order",
                    )


def _local_callable_names(func: ast.AST) -> Set[str]:
    """Names bound to functions defined inside ``func``'s own scope."""
    names: Set[str] = set()

    def scan(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
                continue  # nested scope: its own defs are not ours
            if isinstance(child, (ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Lambda
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            scan(child)

    scan(func)
    return names


@register
class PoolCallablesAreModuleLevel(Rule):
    """REP004 — everything submitted to the worker pool must pickle.

    ``multiprocessing`` pickles a :class:`RunSpec`'s ``fn`` *by
    reference*: lambdas and functions defined inside another function
    cannot be pickled, so a plan built from them works with ``--jobs 1``
    and dies (or silently falls back to serial) on a pool.  The rule
    flags ``RunSpec(...)`` constructions and direct ``Pool`` map-family
    submissions whose callable is a lambda or a name bound to a
    function defined in an enclosing local scope, plus lambda values
    inside a ``RunSpec`` ``kwargs`` literal.
    """

    code = "REP004"
    summary = "pool-submitted callable is not module-level (unpicklable)"
    hint = (
        "move the worker to module level and pass parameters through "
        "RunSpec.kwargs"
    )

    POOL_METHODS = frozenset(
        {"map", "map_async", "imap", "imap_unordered", "apply_async",
         "starmap", "starmap_async"}
    )

    def _callable_problem(
        self, module: SourceModule, site: ast.Call, value: ast.expr
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Call):
            # unwrap functools.partial(inner, ...)
            canonical = module.imports.resolve(value.func)
            if canonical in ("functools.partial", "partial") and value.args:
                return self._callable_problem(module, site, value.args[0])
            return None
        if isinstance(value, ast.Name):
            func = module.enclosing_function(site)
            while func is not None:
                if value.id in _local_callable_names(func):
                    return f"the locally-defined function {value.id!r}"
                func = module.enclosing_function(func)
        return None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.imports.resolve(node.func)
            candidates: List[Tuple[ast.expr, str]] = []
            if canonical is not None and (
                canonical == "RunSpec" or canonical.endswith(".RunSpec")
            ):
                fn_value: Optional[ast.expr] = None
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        fn_value = keyword.value
                    elif keyword.arg == "kwargs":
                        for value in _dict_values(keyword.value):
                            candidates.append(
                                (value, "RunSpec kwargs value")
                            )
                if fn_value is None and len(node.args) >= 2:
                    fn_value = node.args[1]
                if fn_value is not None:
                    candidates.append((fn_value, "RunSpec fn"))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.POOL_METHODS
                and node.args
            ):
                candidates.append(
                    (node.args[0], f"Pool.{node.func.attr} callable")
                )
            for value, role in candidates:
                if role == "RunSpec kwargs value" and not isinstance(
                    value, ast.Lambda
                ):
                    continue
                problem = self._callable_problem(module, node, value)
                if problem is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{role} is {problem}; pool workers cannot "
                        "unpickle it",
                    )


def _dict_values(node: ast.expr) -> List[ast.expr]:
    """Values of a dict literal or ``dict(...)`` call (best effort)."""
    if isinstance(node, ast.Dict):
        return list(node.values)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
        node.func.id == "dict"
    ):
        return [keyword.value for keyword in node.keywords]
    return []


@register
class MetricsBehindGuard(Rule):
    """REP005 — instrument calls stay behind the captured enabled flag.

    The telemetry layer's zero-overhead contract (PR 2) is that an
    uninstrumented simulation pays *one boolean test* per call site:
    components capture ``self._obs = metrics.enabled`` at construction
    and guard every ``.inc()`` / ``.observe()`` with it.  An unguarded
    call site still executes the (no-op) instrument call on the hot
    path — death by a thousand attribute lookups — and, worse, an
    enabled-registry call outside the guard can drift from the
    captured flag.  The rule flags ``.inc(...)`` / ``.observe(...)``
    calls in kernel-path packages that are neither inside an ``if``
    whose test mentions an ``_obs``/``enabled`` guard nor after a
    ``if not <guard>: return`` early exit.
    """

    code = "REP005"
    summary = "metrics .inc()/.observe() outside a metrics.enabled guard"
    hint = (
        "capture `self._obs = metrics.enabled` at construction and "
        "wrap the call in `if self._obs:`"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(*KERNEL_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
            ):
                continue
            if self._is_guarded(module, node):
                continue
            yield self.finding(
                module,
                node,
                f".{node.func.attr}() call not behind a captured "
                "metrics.enabled guard",
            )

    def _is_guarded(self, module: SourceModule, node: ast.AST) -> bool:
        previous: ast.AST = node
        for ancestor in module.parent_chain(node):
            if isinstance(ancestor, (ast.If, ast.While)):
                in_body = any(
                    previous is statement for statement in ancestor.body
                )
                if in_body and _mentions_guard(ancestor.test):
                    return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if self._early_return_guard(ancestor, previous):
                    return True
                previous = ancestor
                continue
            previous = ancestor
        return False

    @staticmethod
    def _early_return_guard(
        func: ast.AST, top_statement: ast.AST
    ) -> bool:
        """``if not <guard>: return`` before the statement at hand."""
        body = getattr(func, "body", [])
        for statement in body:
            if statement is top_statement:
                return False
            if (
                isinstance(statement, ast.If)
                and _mentions_guard_negatively(statement.test)
                and statement.body
                and isinstance(
                    statement.body[-1],
                    (ast.Return, ast.Raise, ast.Continue),
                )
            ):
                return True
        return False


@register
class SinkRecordsCarrySchema(Rule):
    """REP006 — every JSONL sink record is stamped with its schema.

    The observability artifacts are consumed out-of-band (``python -m
    repro inspect``, the CI smoke job, months-later analysis), so every
    line must be self-describing: a ``schema`` tag names the record
    layout and its version (``repro.metrics/1`` style).  The rule flags
    dict literals handed to a sink ``.write(...)`` call that spell out
    their keys but omit ``"schema"`` — a record that would validate as
    "unknown schema" the moment it is read back.
    """

    code = "REP006"
    summary = "JSONL sink record written without a schema tag"
    hint = (
        'include `"schema": <SCHEMA_CONSTANT>` (see repro.obs.sinks) '
        "in every record handed to a sink writer"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Dict)
            ):
                continue
            record = node.args[0]
            has_spread = any(key is None for key in record.keys)
            keys = {
                key.value
                for key in record.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            }
            if "schema" in keys or has_spread:
                continue
            yield self.finding(
                module,
                node,
                "record written to a JSONL sink without a 'schema' key",
            )


def _mentions_any(test: ast.expr, names: Sequence[str]) -> bool:
    """True when ``test`` references any of ``names`` (even under ``not``:
    ``if not link.pending_arrival(now): continue`` *is* the guard)."""
    for node in ast.walk(test):
        identifier = None
        if isinstance(node, ast.Attribute):
            identifier = node.attr
        elif isinstance(node, ast.Name):
            identifier = node.id
        if identifier in names:
            return True
    return False


@register
class LinkDrainsBehindGuard(Rule):
    """REP007 — tick-path link drains stay behind a cheap emptiness guard.

    The active-set kernel (PR 4) makes idle cycles nearly free, but a
    *woken* component still runs its whole ``tick``.  ``Link.receive()``
    / ``Link.receive_into()`` / ``Link.receive_span()`` walk the
    in-flight pipeline and
    ``Link.credits()`` drains the matured credit returns — per-port,
    per-cycle work that dominates busy ticks when called unconditionally.
    Each has a cheap O(1) pre-check: ``pending_arrival(now)`` before a
    receive, ``can_send(now)`` (which short-circuits the credit drain)
    before transmit-side credit inspection, or ``credits_in_return()``
    emptiness.  The rule flags receive/credits calls lexically reachable
    from a ``tick`` method (following ``self.<method>()`` calls within
    the class) that are neither inside an ``if``/``while`` whose test
    mentions one of the guards nor after a preceding
    ``if <guard-test>: continue/return`` in an enclosing body.  The link
    implementation itself is exempt.
    """

    code = "REP007"
    summary = (
        "tick-path link receive()/receive_into()/receive_span()/"
        "credits() without a cheap guard"
    )
    hint = (
        "test link.pending_arrival(now) / link.can_send(now) / "
        "link.credits_in_return() before draining in a tick path"
    )

    #: the drain calls that must be guarded (``receive_span`` is the
    #: packed plane's bulk drain — same walk, same guard)
    DRAINS = frozenset(
        {"receive", "receive_into", "receive_span", "credits"}
    )
    #: identifiers any of which makes an enclosing/preceding test a guard
    GUARDS = ("pending_arrival", "can_send", "credits_in_return")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(*KERNEL_PACKAGES):
            return
        if module.module_name == LINK_HOME:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods: Dict[str, ast.AST] = {
                statement.name: statement
                for statement in node.body
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            }
            if "tick" not in methods:
                continue
            for name in self._reachable_from_tick(methods):
                yield from self._check_method(module, methods[name])

    @staticmethod
    def _reachable_from_tick(methods: Dict[str, ast.AST]) -> Set[str]:
        """Method names reachable from ``tick`` via ``self.<m>()`` calls."""
        seen = {"tick"}
        frontier = ["tick"]
        while frontier:
            for node in ast.walk(methods[frontier.pop()]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                    and node.func.attr not in seen
                ):
                    seen.add(node.func.attr)
                    frontier.append(node.func.attr)
        return seen

    def _check_method(
        self, module: SourceModule, method: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.DRAINS
                # self.credits(...) etc. is a method of the class under
                # scrutiny, not a link drain
                and not (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                )
            ):
                continue
            if not self._is_guarded(module, node, method):
                yield self.finding(
                    module,
                    node,
                    f"link .{node.func.attr}() in a tick path without a "
                    "cheap emptiness guard",
                )

    def _is_guarded(
        self, module: SourceModule, node: ast.AST, method: ast.AST
    ) -> bool:
        previous: ast.AST = node
        for ancestor in module.parent_chain(node):
            if isinstance(ancestor, (ast.If, ast.While)) and any(
                previous is statement for statement in ancestor.body
            ):
                if _mentions_any(ancestor.test, self.GUARDS):
                    return True
            # scan only the statement list actually containing `previous`
            # (a guard inside a sibling branch protects nothing)
            for attr in ("body", "orelse", "finalbody"):
                body = getattr(ancestor, attr, None)
                if isinstance(body, list) and any(
                    previous is statement for statement in body
                ):
                    if self._preceding_guard(body, previous):
                        return True
                    break
            if ancestor is method:
                break
            previous = ancestor
        return False

    def _preceding_guard(
        self, body: List[ast.stmt], upto: ast.AST
    ) -> bool:
        """A ``if <guard>: continue/return/raise`` before ``upto``."""
        for statement in body:
            if statement is upto:
                return False
            if (
                isinstance(statement, ast.If)
                and _mentions_any(statement.test, self.GUARDS)
                and statement.body
                and isinstance(
                    statement.body[-1],
                    (ast.Return, ast.Raise, ast.Continue, ast.Break),
                )
            ):
                return True
        return False


@register
class PackedPathBuildsNoFlits(Rule):
    """REP008 — packed-path modules never construct ``Flit`` objects.

    The packed data plane's entire value is that the hot path moves flit
    *coordinates* — ``(worm, index)`` ints and ``(worm, start, count)``
    spans — instead of allocating one object per flit per hop.  A
    ``Flit(...)`` construction (or a ``worm.flit(...)`` /
    ``span_flits(...)`` materialisation) inside
    ``repro.switches.packed_central``, ``repro.switches.packed_input``
    or ``repro.host.packed_interface`` quietly reintroduces the
    allocation churn the plane exists to remove — every behavioural test
    still passes, only the benchmark gate would eventually notice.
    Conversion back to the object world stays at the sanctioned
    boundary: :func:`repro.flits.packed.flit_repr` for byte-identical
    trace strings, and the :class:`~repro.flits.packed.WormTable` /
    ``span_flits`` helpers for telemetry and the object reference path,
    which live outside the packed modules.
    """

    code = "REP008"
    summary = "Flit object construction inside a packed-path module"
    hint = (
        "move flits as (worm, index) coordinates or spans; for trace "
        "strings use repro.flits.packed.flit_repr, and keep object "
        "conversion outside the packed modules"
    )

    #: canonical callables that materialise Flit objects
    MATERIALISERS = frozenset(
        {
            "repro.flits.flit.Flit",
            "repro.flits.packed.span_flits",
        }
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module_name not in PACKED_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.imports.resolve(node.func)
            if canonical in self.MATERIALISERS:
                yield self.finding(
                    module,
                    node,
                    f"{canonical.rsplit('.', 1)[1]}() materialises flit "
                    "objects in a packed-path module",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "flit"
            ):
                yield self.finding(
                    module,
                    node,
                    ".flit() materialises a Flit in a packed-path module",
                )


def _mentions_trace_guard(test: ast.expr) -> bool:
    """True when ``test`` positively references a tracing/profiling guard.

    Accepts everything :func:`_mentions_guard` accepts (the
    ``metrics.enabled`` convention covers ``self.tracer.enabled`` too),
    plus identifiers containing ``prof`` (the kernel's captured
    ``prof = self._prof`` local) — but ``<prof> is None`` compares are
    *negative*: that branch is the one where no profiler is attached.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        comparator = test.comparators[0]
        is_none = (
            isinstance(comparator, ast.Constant)
            and comparator.value is None
        )
        if is_none and isinstance(test.ops[0], ast.Is):
            return False
    if _mentions_guard(test):
        return True
    for node in ast.walk(test):
        identifier = None
        if isinstance(node, ast.Attribute):
            identifier = node.attr
        elif isinstance(node, ast.Name):
            identifier = node.id
        if identifier is not None and "prof" in identifier:
            return True
    return False


def _mentions_trace_guard_negatively(test: ast.expr) -> bool:
    """``not <guard>`` or ``<guard> is None`` early-exit tests."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _mentions_trace_guard(test.operand)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        comparator = test.comparators[0]
        if (
            isinstance(test.ops[0], ast.Is)
            and isinstance(comparator, ast.Constant)
            and comparator.value is None
        ):
            return _mentions_trace_guard(test.left) or _mentions_guard(
                test.left
            )
    return False


@register
class TraceEmitsBehindGuard(Rule):
    """REP009 — tracer/profiler emits stay behind an enabled guard.

    The profiling subsystem extends the zero-overhead contract (REP005)
    to event emission: an unprofiled simulation pays one boolean test
    per emit site, never a method call.  ``tracer.emit(...)`` builds its
    keyword dict and tuple-sorts the details *before* the disabled
    tracer returns, so an unguarded emit in a kernel path costs real
    allocations on every hot cycle even when tracing is off; likewise
    the kernel's profiler hooks (``record_tick`` / ``record_step`` /
    ``record_fast_forward``) must only be reached when a profiler is
    attached.  The rule flags such calls in kernel-path packages that
    are neither inside an ``if`` whose test mentions a
    tracing/profiling guard (``.enabled``, ``_obs``, a captured
    ``prof`` local tested ``is not None``) nor after a
    ``if not <guard>: return`` / ``if <prof> is None: return`` early
    exit.  The tracer implementation itself is exempt.
    """

    code = "REP009"
    summary = (
        "tracer .emit()/profiler record_*() outside an enabled/attached "
        "guard"
    )
    hint = (
        "wrap the call in `if self.tracer.enabled:` (or test the "
        "captured profiler local `is not None`) so the unprofiled hot "
        "path pays one boolean test"
    )

    #: profiler-hook calls that must be guarded alongside ``emit``
    EMITS = frozenset(
        {"emit", "record_tick", "record_step", "record_fast_forward"}
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(*KERNEL_PACKAGES):
            return
        if module.module_name == TRACE_HOME:
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.EMITS
            ):
                continue
            if self._is_guarded(module, node):
                continue
            yield self.finding(
                module,
                node,
                f".{node.func.attr}() call not behind a tracer-enabled "
                "or profiler-attached guard",
            )

    def _is_guarded(self, module: SourceModule, node: ast.AST) -> bool:
        previous: ast.AST = node
        for ancestor in module.parent_chain(node):
            if isinstance(ancestor, (ast.If, ast.While)):
                in_body = any(
                    previous is statement for statement in ancestor.body
                )
                if in_body and _mentions_trace_guard(ancestor.test):
                    return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if self._early_exit_guard(ancestor, previous):
                    return True
                previous = ancestor
                continue
            previous = ancestor
        return False

    @staticmethod
    def _early_exit_guard(func: ast.AST, top_statement: ast.AST) -> bool:
        """A negative guard with an early exit before the statement."""
        body = getattr(func, "body", [])
        for statement in body:
            if statement is top_statement:
                return False
            if (
                isinstance(statement, ast.If)
                and _mentions_trace_guard_negatively(statement.test)
                and statement.body
                and isinstance(
                    statement.body[-1],
                    (ast.Return, ast.Raise, ast.Continue),
                )
            ):
                return True
        return False


@register
class LostWakeMutations(Rule):
    """REP010 — dormancy-state mutations register a kernel wake.

    Under the active-set kernel a component only runs when something
    scheduled it; handing it work without a wake leaves that work
    stranded until an unrelated event happens to tick the component —
    the exact dormancy-bug class the link wake hooks were introduced to
    fix, and invisible to tests that happen to keep the network busy.
    For every :class:`~repro.sim.component.Component` subclass in a
    kernel package, the rule examines each method that is *not* on the
    tick/``__init__``/``attach`` closure (those run with a wake already
    guaranteed): if the method's own ``self``-call closure mutates
    dormancy-relevant state — a container mutation or assignment to a
    ``self`` attribute whose name mentions queue/credit/blocked/
    pending/backlog/inflow/waiting/inject/fifo/buffer — it must also
    register a wake (``wake_at``/``wake_now``/``wake``/``schedule`` or
    a link ``wake_on_arrival``/``wake_on_credit`` hook).
    """

    code = "REP010"
    summary = (
        "dormancy-relevant state mutated with no wake registration"
    )
    hint = (
        "call self.wake_now()/self.wake_at(...) after handing a "
        "dormant component work (or register a link wake hook)"
    )

    #: the component base every kernel actor derives from
    COMPONENT_BASE = "repro.sim.component.Component"
    #: methods whose closures run with a wake already guaranteed
    EXEMPT_ROOTS = ("tick", "__init__", "attach")
    #: container mutations that hand a component work
    MUTATORS = frozenset(
        {"append", "appendleft", "extend", "add", "insert", "push"}
    )
    #: wake-registration calls that discharge the obligation
    WAKES = frozenset(
        {"wake_at", "wake_now", "wake", "schedule",
         "wake_on_arrival", "wake_on_credit"}
    )
    #: attribute names that look like dormancy-relevant state
    STATE_RE = re.compile(
        r"queue|credit|blocked|pending|backlog|inflow|waiting|inject"
        r"|fifo|buffer"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, project: ProjectIndex
    ) -> Iterator[Finding]:
        for cls_qualname in project.descendants(self.COMPONENT_BASE):
            info = project.classes.get(cls_qualname)
            if info is None or not _in_packages(
                info.module, KERNEL_PACKAGES
            ):
                continue
            module_info = project.modules.get(info.module)
            if module_info is None:
                continue
            exempt: Set[str] = set()
            for root in self.EXEMPT_ROOTS:
                exempt.update(
                    project.method_closure(cls_qualname, root)
                )
            for name in sorted(info.methods):
                method = info.methods[name]
                if name.startswith("__") or name in self.EXEMPT_ROOTS:
                    continue
                if method.qualname in exempt:
                    continue
                if self._is_property(method):
                    continue
                closure = project.method_closure(cls_qualname, name)
                mutated = self._mutated_state(project, closure)
                if not mutated:
                    continue
                if self._registers_wake(project, closure):
                    continue
                yield self.finding(
                    module_info.source,
                    method.node,
                    f"{info.name}.{name}() mutates dormancy-relevant "
                    f"state ({', '.join(sorted(mutated))}) but never "
                    "registers a wake",
                )

    @staticmethod
    def _is_property(method: FunctionInfo) -> bool:
        for decorator in method.node.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id in (
                "property", "cached_property"
            ):
                return True
            if isinstance(decorator, ast.Attribute) and decorator.attr in (
                "setter", "getter", "deleter"
            ):
                return True
        return False

    def _mutated_state(
        self, project: ProjectIndex, closure: Sequence[str]
    ) -> Set[str]:
        mutated: Set[str] = set()
        for qualname in closure:
            fn = project.functions[qualname]
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.MUTATORS
                ):
                    attr = self._self_attr(node.func.value)
                    if attr is not None and self.STATE_RE.search(attr):
                        mutated.add(attr)
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = self._self_attr(target)
                        if attr is not None and self.STATE_RE.search(
                            attr
                        ):
                            mutated.add(attr)
        return mutated

    @staticmethod
    def _self_attr(node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _registers_wake(
        self, project: ProjectIndex, closure: Sequence[str]
    ) -> bool:
        for qualname in closure:
            fn = project.functions[qualname]
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.WAKES
                ):
                    return True
        return False


#: the object-plane/packed-plane module pairs REP011 holds to parity
PLANE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("repro.switches.central_buffer", "repro.switches.packed_central"),
    ("repro.switches.input_buffer", "repro.switches.packed_input"),
    ("repro.host.interface", "repro.host.packed_interface"),
)


@register
class PlaneTelemetryParity(Rule):
    """REP011 — packed and object data planes emit identical telemetry.

    The packed plane is a drop-in replacement for the object plane; the
    differential tests prove the *data* is bit-identical, but nothing
    dynamic notices a packed override that silently drops a tracer
    event or counter — disabled-telemetry runs exercise neither.  For
    each configured module pair, the rule pairs every packed class with
    its nearest object-module ancestor and compares what their ``tick``
    closures (``self``-calls resolved in each class's own MRO view, so
    packed overrides replace inherited phases) can emit: the set of
    tracer event names (third positional ``.emit()`` argument) and the
    set of metric counter names (``.inc()``/``.observe()`` receivers,
    mapped back to their ``metrics.counter("...")`` registrations).
    Any asymmetry — an event or counter present on one plane's tick
    path but not the other's — is a finding on the packed class.
    """

    code = "REP011"
    summary = (
        "packed/object plane tick paths emit different telemetry names"
    )
    hint = (
        "make the packed override emit exactly the events/counters of "
        "the object-plane phase it replaces (see docs/performance.md)"
    )

    #: instrument-registration calls mapping attrs to metric names
    REGISTRATIONS = frozenset({"counter", "histogram", "gauge"})

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, project: ProjectIndex
    ) -> Iterator[Finding]:
        for object_module, packed_module in PLANE_PAIRS:
            if (
                object_module not in project.modules
                or packed_module not in project.modules
            ):
                continue
            source = project.modules[packed_module].source
            for cls_qualname in sorted(project.classes):
                info = project.classes[cls_qualname]
                if info.module != packed_module:
                    continue
                base = self._object_base(
                    project, cls_qualname, object_module
                )
                if base is None:
                    continue
                packed_events, packed_counters = self._tick_surface(
                    project, cls_qualname
                )
                object_events, object_counters = self._tick_surface(
                    project, base
                )
                base_name = project.classes[base].name
                yield from self._compare(
                    source, info.node, info.name, base_name,
                    "tracer event", packed_events, object_events,
                )
                yield from self._compare(
                    source, info.node, info.name, base_name,
                    "metric counter", packed_counters, object_counters,
                )

    @staticmethod
    def _object_base(
        project: ProjectIndex, cls_qualname: str, object_module: str
    ) -> Optional[str]:
        for ancestor in project.mro(cls_qualname)[1:]:
            info = project.classes.get(ancestor)
            if info is not None and info.module == object_module:
                return ancestor
        return None

    def _tick_surface(
        self, project: ProjectIndex, cls_qualname: str
    ) -> Tuple[Set[str], Set[str]]:
        """(event names, counter names) emittable from the tick closure."""
        registrations = self._registration_map(project, cls_qualname)
        events: Set[str] = set()
        counters: Set[str] = set()
        for qualname in project.method_closure(cls_qualname, "tick"):
            fn = project.functions[qualname]
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                if node.func.attr == "emit" and len(node.args) >= 3:
                    event = node.args[2]
                    if isinstance(event, ast.Constant) and isinstance(
                        event.value, str
                    ):
                        events.add(event.value)
                elif node.func.attr in ("inc", "observe"):
                    receiver = node.func.value
                    if (
                        isinstance(receiver, ast.Attribute)
                        and isinstance(receiver.value, ast.Name)
                        and receiver.value.id == "self"
                    ):
                        counters.add(
                            registrations.get(
                                receiver.attr, receiver.attr
                            )
                        )
        return events, counters

    def _registration_map(
        self, project: ProjectIndex, cls_qualname: str
    ) -> Dict[str, str]:
        """``self._c_x`` attr -> metric name, from the ``__init__`` MRO."""
        registrations: Dict[str, str] = {}
        for ancestor in project.mro(cls_qualname):
            info = project.classes.get(ancestor)
            if info is None or "__init__" not in info.methods:
                continue
            for node in ast.walk(info.methods["__init__"].node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in self.REGISTRATIONS
                    and node.value.args
                    and isinstance(node.value.args[0], ast.Constant)
                    and isinstance(node.value.args[0].value, str)
                ):
                    continue
                attr = node.targets[0].attr
                if attr not in registrations:
                    registrations[attr] = node.value.args[0].value
        return registrations

    def _compare(
        self,
        source: SourceModule,
        node: ast.AST,
        packed_name: str,
        object_name: str,
        kind: str,
        packed: Set[str],
        objects: Set[str],
    ) -> Iterator[Finding]:
        missing = sorted(objects - packed)
        extra = sorted(packed - objects)
        if not missing and not extra:
            return
        clauses: List[str] = []
        if missing:
            clauses.append(
                f"missing {', '.join(missing)} (emitted by "
                f"{object_name})"
            )
        if extra:
            clauses.append(
                f"extra {', '.join(extra)} (absent from "
                f"{object_name})"
            )
        yield self.finding(
            source,
            node,
            f"{packed_name} tick path breaks {kind} parity with "
            f"{object_name}: {'; '.join(clauses)}",
        )


@register
class SchemaFieldDrift(Rule):
    """REP012 — literal sink records match their registered schemas.

    REP006 guarantees every JSONL record carries *a* schema tag; this
    rule checks the tag and the fields against the registry the readers
    validate with (``SCHEMA_FIELDS`` in :mod:`repro.obs.sinks`).  A
    record written with a tag nothing registered, or without a field
    its schema requires, round-trips to a validation error months later
    when the artifact is finally read — the drift is only catchable at
    the write site.  The rule statically evaluates ``SCHEMA_FIELDS``
    through the project index, then checks every dict literal handed to
    a sink ``.write(...)``: the ``schema`` value (a string literal or a
    constant resolvable through imports) must be registered, and the
    literal's keys must cover the schema's required fields (records
    built with ``**spread`` are only tag-checked).
    """

    code = "REP012"
    summary = "sink record drifts from its registered schema fields"
    hint = (
        "match the record to SCHEMA_FIELDS in repro.obs.sinks (or "
        "register the new schema there first)"
    )

    #: where the schema registry lives
    SINKS_MODULE = "repro.obs.sinks"
    REGISTRY_NAME = "SCHEMA_FIELDS"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, project: ProjectIndex
    ) -> Iterator[Finding]:
        registry = self._registry(project)
        if registry is None:
            return
        for module_name in sorted(project.modules):
            source = project.modules[module_name].source
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Dict)
                ):
                    continue
                yield from self._check_record(
                    project, module_name, source, node.args[0],
                    registry,
                )

    def _registry(
        self, project: ProjectIndex
    ) -> Optional[Dict[str, Tuple[str, ...]]]:
        raw = project.constant(self.SINKS_MODULE, self.REGISTRY_NAME)
        if not isinstance(raw, dict):
            return None
        registry: Dict[str, Tuple[str, ...]] = {}
        for tag, fields in raw.items():
            if not isinstance(tag, str) or not isinstance(
                fields, tuple
            ):
                return None
            registry[tag] = tuple(str(name) for name in fields)
        return registry

    def _check_record(
        self,
        project: ProjectIndex,
        module_name: str,
        source: SourceModule,
        record: ast.Dict,
        registry: Dict[str, Tuple[str, ...]],
    ) -> Iterator[Finding]:
        has_spread = any(key is None for key in record.keys)
        keys: Set[str] = set()
        schema_node: Optional[ast.expr] = None
        for key, value in zip(record.keys, record.values):
            if isinstance(key, ast.Constant) and isinstance(
                key.value, str
            ):
                keys.add(key.value)
                if key.value == "schema":
                    schema_node = value
        if schema_node is None:
            return  # REP006's department
        tag = self._schema_tag(project, module_name, schema_node)
        if tag is None:
            return  # dynamic tag: nothing checkable statically
        if tag not in registry:
            yield self.finding(
                source,
                record,
                f"record schema tag {tag!r} is not registered in "
                f"{self.SINKS_MODULE}.{self.REGISTRY_NAME}",
            )
            return
        if has_spread:
            return  # spread may supply the required fields
        missing = [
            name for name in registry[tag] if name not in keys
        ]
        if missing:
            yield self.finding(
                source,
                record,
                f"record with schema {tag!r} is missing required "
                f"field(s) {', '.join(missing)}",
            )

    @staticmethod
    def _schema_tag(
        project: ProjectIndex, module_name: str, node: ast.expr
    ) -> Optional[str]:
        if isinstance(node, ast.Constant):
            return node.value if isinstance(node.value, str) else None
        if isinstance(node, (ast.Name, ast.Attribute)):
            canonical = project.resolve_expr(module_name, node)
            if canonical is None:
                return None
            owner, _, symbol = canonical.rpartition(".")
            if not owner:
                return None
            value = project.constant(owner, symbol)
            return value if isinstance(value, str) else None
        return None


@register
class StoreFilesViaJournal(Rule):
    """REP013 — result-store file I/O flows through the journal only.

    The store's crash-safety guarantees — one writer per segment
    (``O_CREAT | O_EXCL`` claims), newline-terminated records, torn
    final lines recovered not reported, gc that rewrites before it
    removes — all live in :mod:`repro.store.journal`.  A direct
    ``open()`` or ``Path`` write anywhere else under ``repro.store``
    would bypass those rules silently: the file would *work* until the
    first crashed campaign or concurrent farm shard corrupted it.  The
    rule flags direct file calls (``open``, ``io.open``, ``os.open``,
    ``os.fdopen``) and file-mutating method calls (``.write_text``,
    ``.write_bytes``, ``.unlink``, ``.rename``, ``.replace``) in every
    ``repro.store`` module except the journal itself.
    """

    code = "REP013"
    summary = "result-store file I/O outside repro.store.journal"
    hint = (
        "persist through repro.store.journal (claim_segment, "
        "JournalWriter, scan_segment, write_export) so crash "
        "recovery stays correct"
    )

    #: call targets that open file handles directly
    BANNED_CALLS: Tuple[str, ...] = (
        "open", "io.open", "os.open", "os.fdopen"
    )
    #: attribute calls that create, overwrite or remove files
    BANNED_METHODS: Tuple[str, ...] = (
        "write_text", "write_bytes", "unlink", "rename", "replace"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(STORE_PACKAGE):
            return
        if module.in_package(JOURNAL_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            if resolved in self.BANNED_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"direct file call {resolved}() in "
                    f"{module.module_name}; store bytes flow through "
                    f"{JOURNAL_HOME}",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.BANNED_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}(...) file write in "
                    f"{module.module_name}; store bytes flow through "
                    f"{JOURNAL_HOME}",
                )


@register
class FarmBytesViaTransport(Rule):
    """REP014 — farm process/pipe machinery stays in the transport.

    The farm's fault-tolerance guarantees — unbuffered pipes so
    ``select`` is truthful, EOF and torn frames mapped to dead workers,
    polite reaping, pool construction with a serial fallback — all live
    in :mod:`repro.farm.transport`.  A direct ``subprocess.Popen``,
    ``multiprocessing.Pool`` or ``open()`` anywhere else under
    ``repro.farm`` would create a worker or a byte stream the failure
    model never audits: the campaign would *work* until the first
    SIGKILLed worker or torn frame hit the unhandled path.  The rule
    flags process-spawning calls (``subprocess.*``, ``os.fork``,
    ``os.popen``, ``os.system``, ``multiprocessing.*``), direct
    ``select`` calls, direct file calls and file-mutating method calls
    in every ``repro.farm`` module except the transport itself —
    mirroring how REP013 confines store file I/O to the journal.
    """

    code = "REP014"
    summary = "farm process/pipe machinery outside repro.farm.transport"
    hint = (
        "spawn and talk to workers through repro.farm.transport "
        "(spawn_worker, write_frame, read_frame, wait_readable, "
        "create_pool, reap) so the worker failure model stays complete"
    )

    #: call targets that spawn processes, open pipes or files directly
    BANNED_CALLS: Tuple[str, ...] = (
        "open", "io.open", "os.open", "os.fdopen",
        "os.fork", "os.popen", "os.system",
        "subprocess.Popen", "subprocess.run", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output",
        "multiprocessing.Pool", "multiprocessing.Process",
        "multiprocessing.get_context",
        "select.select", "select.poll",
    )
    #: attribute calls that create, overwrite or remove files
    BANNED_METHODS: Tuple[str, ...] = (
        "write_text", "write_bytes", "unlink", "rename", "replace"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_package(FARM_PACKAGE):
            return
        if module.in_package(TRANSPORT_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            if resolved in self.BANNED_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"direct process/pipe call {resolved}() in "
                    f"{module.module_name}; farm bytes and workers "
                    f"flow through {TRANSPORT_HOME}",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.BANNED_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}(...) file write in "
                    f"{module.module_name}; farm bytes and workers "
                    f"flow through {TRANSPORT_HOME}",
                )
