"""Parsed source modules and the name-resolution helpers rules share.

Every rule operates on a :class:`SourceModule`: the file's text, its
:mod:`ast` tree, a child-to-parent node map (the standard library parses
trees top-down only), and an :class:`ImportMap` that resolves names and
attribute chains back to canonical dotted module paths — so
``import numpy as np; np.random.rand()`` and
``from numpy import random; random.rand()`` both resolve to
``numpy.random.rand`` and one rule catches both spellings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional


class ImportMap:
    """Maps names bound by imports to canonical dotted paths."""

    def __init__(self, tree: ast.Module) -> None:
        self._bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._bindings[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the name ``a``
                        root = alias.name.split(".")[0]
                        self._bindings[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._bindings[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if known.

        Unresolvable expressions (calls, subscripts, locals shadowing
        imports are not modelled) return ``None``.
        """
        if isinstance(node, ast.Name):
            return self._bindings.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


@dataclass
class SourceModule:
    """One parsed python file plus the context rules need."""

    path: Path
    display_path: str
    module_name: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.text.splitlines()
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = ImportMap(self.tree)

    @classmethod
    def parse(
        cls, path: Path, display_path: Optional[str] = None
    ) -> "SourceModule":
        """Read and parse ``path`` (raises :class:`SyntaxError`)."""
        text = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            display_path=display_path or str(path),
            module_name=dotted_module_name(path),
            text=text,
            tree=ast.parse(text, filename=str(path)),
        )

    # ------------------------------------------------------------------
    # tree helpers
    # ------------------------------------------------------------------
    def line_text(self, line: int) -> str:
        """Stripped source text of a 1-based line (``""`` out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        """Innermost function or lambda containing ``node``, if any."""
        for ancestor in self.parent_chain(node):
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                return ancestor
        return None

    # ------------------------------------------------------------------
    # package scoping
    # ------------------------------------------------------------------
    def in_package(self, *packages: str) -> bool:
        """True when this module lives in any of the dotted ``packages``."""
        for package in packages:
            if self.module_name == package:
                return True
            if self.module_name.startswith(package + "."):
                return True
        return False


def dotted_module_name(path: Path) -> str:
    """Best-effort dotted module path for a file.

    Anchors on the last path component named ``repro`` (the package
    root both in ``src/`` layouts and in test fixture trees); files
    outside any ``repro`` tree fall back to their stem.
    """
    parts = list(path.parts)
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return path.stem
    dotted = parts[anchor:-1] + [path.stem]
    if path.stem == "__init__":
        dotted = parts[anchor:-1]
    return ".".join(dotted)
