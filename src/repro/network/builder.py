"""Assemble a runnable network from a :class:`SimulationConfig`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.schemes import SwitchArchitecture
from repro.errors import ConfigurationError
from repro.flits.destset import DestinationSet
from repro.flits.encoding import HeaderEncoding
from repro.host.interface import HostInterface
from repro.host.node import HostNode, allocate_nodes
from repro.host.packed_interface import PackedHostInterface
from repro.metrics.collectors import MetricsCollector
from repro.network.config import SimulationConfig, TopologyKind
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.routing.reachability import tables_for_bmin, tables_for_umin
from repro.routing.table import SwitchRoutingTable
from repro.routing.updown import tables_for_irregular
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.base import SwitchBase
from repro.switches.central_buffer import CentralBufferSwitch
from repro.switches.input_buffer import InputBufferSwitch
from repro.switches.link import Link
from repro.switches.packed_central import PackedCentralBufferSwitch
from repro.switches.packed_input import PackedInputBufferSwitch
from repro.topology.bmin import BidirectionalMin
from repro.topology.graph import NodeKind, Topology
from repro.topology.irregular import IrregularNetwork
from repro.topology.umin import UnidirectionalMin

TopologyObject = Union[BidirectionalMin, UnidirectionalMin, IrregularNetwork]


@dataclass
class Network:
    """A built, runnable network and all its parts."""

    config: SimulationConfig
    sim: Simulator
    topology: Topology
    topology_object: TopologyObject
    tables: List[SwitchRoutingTable]
    switches: List[SwitchBase]
    interfaces: List[HostInterface]
    nodes: List[HostNode]
    collector: MetricsCollector
    encoding: HeaderEncoding
    links: List[Link] = field(default_factory=list)
    metrics: MetricsRegistry = NULL_REGISTRY

    @property
    def num_hosts(self) -> int:
        """System size N."""
        return self.config.num_hosts

    def unicast_header_flits(self) -> int:
        """Header size of a single-destination packet."""
        return self.encoding.header_flits(
            DestinationSet.single(self.num_hosts, 0)
        )

    def quiescent(self) -> bool:
        """True when nothing is in flight anywhere."""
        return (
            self.collector.outstanding_messages == 0
            and all(ni.idle() for ni in self.interfaces)
            and all(sw.idle() for sw in self.switches)
        )


def _build_topology(config: SimulationConfig):
    if config.topology is TopologyKind.BMIN:
        bmin = BidirectionalMin.for_hosts(config.num_hosts, config.arity)
        return bmin, bmin.topology, tables_for_bmin(bmin)
    if config.topology is TopologyKind.UMIN:
        levels = 1
        size = config.arity
        while size < config.num_hosts:
            size *= config.arity
            levels += 1
        umin = UnidirectionalMin(config.arity, levels)
        return umin, umin.topology, tables_for_umin(umin)
    if config.topology is TopologyKind.IRREGULAR:
        irregular = IrregularNetwork(
            num_switches=config.irregular_switches,
            hosts_per_switch=config.num_hosts // config.irregular_switches,
            ports_per_switch=2 * config.arity,
            extra_links=config.irregular_extra_links,
            seed=config.topology_seed,
        )
        return irregular, irregular.topology, tables_for_irregular(irregular)
    raise ConfigurationError(f"unknown topology kind {config.topology!r}")


def _switch_class(architecture: SwitchArchitecture, packed: bool):
    if architecture is SwitchArchitecture.CENTRAL_BUFFER:
        return PackedCentralBufferSwitch if packed else CentralBufferSwitch
    if architecture is SwitchArchitecture.INPUT_BUFFER:
        return PackedInputBufferSwitch if packed else InputBufferSwitch
    raise ConfigurationError(f"unknown architecture {architecture!r}")


def build_network(
    config: SimulationConfig,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Network:
    """Build every component of the configured system and wire it up.

    ``metrics`` is an observability registry shared by every switch and
    host; the default ``NULL_REGISTRY`` makes every instrumentation site
    a no-op (see :mod:`repro.obs`).
    """
    config.validate()
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_REGISTRY
    topology_object, topology, tables = _build_topology(config)
    sim = Simulator(seed=config.seed, dense=config.dense_kernel)
    encoding = config.build_encoding()
    collector = MetricsCollector(config.num_hosts)
    settings = config.switch_settings()
    switch_class = _switch_class(config.switch_architecture, config.packed)
    interface_class = PackedHostInterface if config.packed else HostInterface

    switches: List[SwitchBase] = []
    for switch_id, ports in enumerate(topology.switch_ports):
        switch = switch_class(
            name=f"sw{switch_id}",
            table=tables[switch_id],
            num_ports=ports,
            settings=settings,
            tracer=tracer,
            metrics=metrics,
        )
        sim.add_component(switch)
        switches.append(switch)

    interfaces: List[HostInterface] = []
    for host in range(config.num_hosts):
        interface = interface_class(
            host, tracer=tracer, rx_depth=config.ni_rx_depth, metrics=metrics
        )
        sim.add_component(interface)
        interfaces.append(interface)

    links: List[Link] = []
    for spec in topology.links:
        link = Link(
            name=f"{spec.src}->{spec.dst}", latency=config.link_latency
        )
        links.append(link)
        if spec.src.kind == NodeKind.HOST:
            interfaces[spec.src.node].connect_out(link)
        else:
            switches[spec.src.node].connect_out(spec.src.port, link)
        if spec.dst.kind == NodeKind.HOST:
            interfaces[spec.dst.node].connect_in(link)
        else:
            switches[spec.dst.node].connect_in(spec.dst.port, link)

    nodes = allocate_nodes(
        sim=sim,
        interfaces=interfaces,
        encoding=encoding,
        collector=collector,
        params=config.host_params(),
        metrics=metrics,
    )
    return Network(
        config=config,
        sim=sim,
        topology=topology,
        topology_object=topology_object,
        tables=tables,
        switches=switches,
        interfaces=interfaces,
        nodes=nodes,
        collector=collector,
        encoding=encoding,
        links=links,
        metrics=metrics,
    )
