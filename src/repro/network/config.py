"""Simulation configuration: every knob of the reproduced system.

Defaults model the paper's baseline: a 64-host bidirectional MIN of
8-port switches (arity 4), SP-Switch-like central buffers (4 KB in
16-byte chunks, with 2-byte flits: 2048 flits in 8-flit chunks),
bit-string header encoding, turnaround LCA routing, and software
start-up overheads of a few tens of cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.schemes import SwitchArchitecture
from repro.errors import ConfigurationError
from repro.flits.destset import DestinationSet
from repro.flits.encoding import (
    BitStringEncoding,
    HeaderEncoding,
    MultiportEncoding,
)
from repro.host.node import HostParams
from repro.routing.base import MulticastRoutingMode, UpPortPolicy
from repro.switches.base import ReplicationMode, SwitchSettings


class TopologyKind(enum.Enum):
    """Which network family to build."""

    BMIN = "bmin"
    UMIN = "umin"
    IRREGULAR = "irregular"


class EncodingKind(enum.Enum):
    """Which multidestination header encoding hosts use."""

    BITSTRING = "bitstring"
    MULTIPORT = "multiport"


@dataclass
class SimulationConfig:
    """Complete description of one simulated system."""

    # system shape
    num_hosts: int = 64
    arity: int = 4
    topology: TopologyKind = TopologyKind.BMIN
    switch_architecture: SwitchArchitecture = SwitchArchitecture.CENTRAL_BUFFER
    encoding: EncodingKind = EncodingKind.BITSTRING
    multicast_mode: MulticastRoutingMode = MulticastRoutingMode.TURNAROUND
    #: branch forwarding discipline; SYNCHRONOUS is the rejected
    #: alternative of paper §3 and is modelled on the IB switch only
    replication: ReplicationMode = ReplicationMode.ASYNCHRONOUS
    #: RANDOM models the multipath balancing of SP-style route tables and
    #: avoids the synchronized tie-breaking that ADAPTIVE suffers when
    #: many worms decide in the same cycle; DETERMINISTIC pins each flow
    #: to one path (useful for analytic cross-checks)
    up_port_policy: UpPortPolicy = UpPortPolicy.RANDOM

    # link layer
    link_latency: int = 1
    flit_payload_bits: int = 16

    # central-buffer switch
    input_fifo_depth: int = 8
    central_buffer_flits: int = 2048
    chunk_flits: int = 8
    cb_write_bandwidth: int = 8
    cb_read_bandwidth: int = 8

    # input-buffer switch (None: sized automatically to the max packet)
    input_buffer_flits: Optional[int] = None

    # switch pipeline
    routing_delay: int = 2

    # host adapter
    #: NI receive-FIFO depth; must cover the credit round trip of the
    #: ejection link (2*link_latency) to sustain full-rate reception
    ni_rx_depth: int = 4

    # host software model
    sw_send_overhead: int = 40
    sw_recv_overhead: int = 40
    max_packet_payload_flits: int = 128

    # irregular-topology shape (used when topology is IRREGULAR)
    irregular_switches: int = 8
    irregular_extra_links: int = 2
    topology_seed: int = 7

    # determinism and checking
    seed: int = 1
    self_check: bool = False
    #: run on the dense (tick-everything) kernel instead of the
    #: active-set kernel.  Results are bit-identical either way — this
    #: knob exists for differential testing and benchmarking, so it is
    #: deliberately excluded from :func:`describe` fingerprints
    dense_kernel: bool = False
    #: run the packed data plane (int spans, no per-flit objects; see
    #: :mod:`repro.flits.packed`) instead of the object reference path.
    #: Results are bit-identical either way — the object path exists for
    #: differential testing (``tests/sim/test_packed_differential.py``),
    #: so this too is excluded from :func:`describe` fingerprints
    packed: bool = True

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    def build_encoding(self) -> HeaderEncoding:
        """The header encoding object for this system size."""
        if self.encoding is EncodingKind.BITSTRING:
            return BitStringEncoding(
                num_hosts=self.num_hosts,
                flit_payload_bits=self.flit_payload_bits,
            )
        levels = self._bmin_levels()
        return MultiportEncoding(
            arity=self.arity,
            levels=levels,
            flit_payload_bits=self.flit_payload_bits,
        )

    def max_header_flits(self) -> int:
        """Worst-case header size (a broadcast worm's header)."""
        encoding = self.build_encoding()
        return encoding.header_flits(DestinationSet.full(self.num_hosts))

    def max_packet_flits(self) -> int:
        """Largest worm the system can carry (header + payload)."""
        return self.max_header_flits() + self.max_packet_payload_flits

    def effective_input_buffer_flits(self) -> int:
        """IB-switch buffer: explicit, or max packet plus pipeline slack."""
        if self.input_buffer_flits is not None:
            return self.input_buffer_flits
        return self.max_packet_flits() + 2 * self.link_latency

    def effective_input_fifo_depth(self) -> int:
        """CB-switch input FIFO, grown to hold a whole routing header.

        The switch decodes a worm only once its header has fully arrived
        in the input FIFO, so the FIFO must be at least one header deep —
        on large systems the bit-string header (N bits) exceeds small
        synchronisation FIFOs, and real hardware would size its header
        capture registers accordingly.
        """
        return max(self.input_fifo_depth, self.max_header_flits() + 2)

    def switch_settings(self) -> SwitchSettings:
        """Per-switch microarchitecture settings derived from this config."""
        return SwitchSettings(
            input_fifo_depth=self.effective_input_fifo_depth(),
            central_buffer_flits=self.central_buffer_flits,
            chunk_flits=self.chunk_flits,
            cb_write_bandwidth=self.cb_write_bandwidth,
            cb_read_bandwidth=self.cb_read_bandwidth,
            input_buffer_flits=self.effective_input_buffer_flits(),
            max_packet_flits=self.max_packet_flits(),
            routing_delay=self.routing_delay,
            multicast_mode=self.multicast_mode,
            replication=self.replication,
            up_port_policy=self.up_port_policy,
            self_check=self.self_check,
        )

    def host_params(self) -> HostParams:
        """Host software-model parameters derived from this config."""
        return HostParams(
            sw_send_overhead=self.sw_send_overhead,
            sw_recv_overhead=self.sw_recv_overhead,
            max_packet_payload_flits=self.max_packet_payload_flits,
        )

    def _bmin_levels(self) -> int:
        levels = 1
        size = self.arity
        while size < self.num_hosts:
            size *= self.arity
            levels += 1
        if size != self.num_hosts:
            raise ConfigurationError(
                f"num_hosts={self.num_hosts} is not a power of "
                f"arity={self.arity}"
            )
        return levels

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        if self.num_hosts < 2:
            raise ConfigurationError("need at least two hosts")
        if self.arity < 2:
            raise ConfigurationError("arity must be at least 2")
        if self.link_latency < 1:
            raise ConfigurationError("link_latency must be >= 1")
        if self.flit_payload_bits < 1:
            raise ConfigurationError("flit_payload_bits must be >= 1")
        if self.ni_rx_depth < 1:
            raise ConfigurationError("ni_rx_depth must be >= 1")
        self.switch_settings().validate()
        self.host_params().validate()
        if self.topology in (TopologyKind.BMIN, TopologyKind.UMIN):
            self._bmin_levels()
        elif self.num_hosts % self.irregular_switches:
            raise ConfigurationError(
                "num_hosts must divide evenly across irregular_switches"
            )
        if self.replication is ReplicationMode.SYNCHRONOUS and (
            self.switch_architecture is not SwitchArchitecture.INPUT_BUFFER
        ):
            raise ConfigurationError(
                "synchronous replication is modelled on the input-buffer "
                "switch; the central buffer's write-once/read-per-branch "
                "design is inherently asynchronous"
            )
        if self.topology is not TopologyKind.BMIN and (
            self.encoding is EncodingKind.MULTIPORT
        ):
            raise ConfigurationError(
                "multiport encoding is defined for MIN digit structure; "
                "use bitstring on irregular networks"
            )
        max_chunks = -(-self.max_packet_flits() // self.chunk_flits)
        ports_per_switch = 2 * self.arity
        if (
            max_chunks * ports_per_switch
            > self.central_buffer_flits // self.chunk_flits
        ):
            raise ConfigurationError(
                "central buffer cannot guarantee one maximum packet per "
                "input port; the multidestination deadlock-freedom rule "
                "would be violated (shrink max_packet_payload_flits or "
                "grow the buffer)"
            )
        if self.effective_input_buffer_flits() < self.max_packet_flits():
            raise ConfigurationError(
                "input buffer smaller than the largest packet violates the "
                "deadlock-freedom rule for asynchronous replication"
            )

    def derived(self, **changes) -> "SimulationConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)


def describe(config: SimulationConfig) -> str:
    """A one-line reproducibility fingerprint of a configuration.

    Includes every behaviour-affecting field, so two runs printing the
    same description (and the same package version) are replays of each
    other.
    """
    return (
        f"repro(N={config.num_hosts}, arity={config.arity}, "
        f"topo={config.topology.value}, "
        f"arch={config.switch_architecture.value}, "
        f"enc={config.encoding.value}, mode={config.multicast_mode.value}, "
        f"repl={config.replication.value}, up={config.up_port_policy.value}, "
        f"link={config.link_latency}, cb={config.central_buffer_flits}/"
        f"{config.chunk_flits}, bw={config.cb_write_bandwidth}/"
        f"{config.cb_read_bandwidth}, fifo={config.effective_input_fifo_depth()}, "
        f"ib={config.effective_input_buffer_flits()}, "
        f"rd={config.routing_delay}, pkt={config.max_packet_payload_flits}, "
        f"sw={config.sw_send_overhead}/{config.sw_recv_overhead}, "
        f"seed={config.seed})"
    )
