"""Network assembly and the top-level simulation facade."""

from repro.network.config import SimulationConfig, TopologyKind, EncodingKind
from repro.network.builder import Network, build_network
from repro.network.simulation import SimulationResult, run_simulation

__all__ = [
    "EncodingKind",
    "Network",
    "SimulationConfig",
    "SimulationResult",
    "TopologyKind",
    "build_network",
    "run_simulation",
]
