"""Top-level run loop and result bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.errors import SimulationError
from repro.flits.packet import TrafficClass
from repro.metrics.collectors import MetricsCollector
from repro.network.builder import Network, build_network
from repro.network.config import SimulationConfig
from repro.obs import runtime as obs_runtime
from repro.sim.stats import RunningStats
from repro.traffic.base import Workload

#: a network with zero progress for this many cycles (and no pending
#: calendar events) is declared wedged
STALL_LIMIT = 50_000


@dataclass
class SimulationResult:
    """Everything an experiment needs from one finished run."""

    config: SimulationConfig
    cycles: int
    completed: bool
    collector: MetricsCollector

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def unicast_latency(self) -> RunningStats:
        """Per-delivery latency of background unicast messages."""
        return self.collector.classes[TrafficClass.UNICAST].latency

    @property
    def multicast_message_latency(self) -> RunningStats:
        """Per-delivery latency of hardware multicast messages."""
        return self.collector.classes[TrafficClass.MULTICAST].latency

    @property
    def op_last_latency(self) -> RunningStats:
        """Last-arrival latency over completed multicast operations."""
        return self.collector.op_last_latency

    @property
    def op_average_latency(self) -> RunningStats:
        """Mean per-destination latency over completed operations."""
        return self.collector.op_average_latency

    def delivered_flits(self, traffic_class: TrafficClass) -> int:
        """In-window delivered payload flits for one class."""
        return self.collector.classes[traffic_class].payload_flits

    def throughput(
        self, traffic_class: TrafficClass, window_cycles: int
    ) -> float:
        """Delivered payload flits per cycle per host over a window."""
        if window_cycles <= 0:
            return 0.0
        return (
            self.delivered_flits(traffic_class)
            / window_cycles
            / self.config.num_hosts
        )

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers, for reports and tests."""
        out: Dict[str, float] = {
            "cycles": self.cycles,
            "completed": float(self.completed),
            "operations": float(self.collector.operations_created),
        }
        for traffic_class, stats in self.collector.classes.items():
            prefix = traffic_class.value
            out[f"{prefix}_deliveries"] = float(stats.deliveries)
            out[f"{prefix}_latency_mean"] = (
                stats.latency.mean if stats.latency.count else 0.0
            )
        if self.op_last_latency.count:
            out["op_last_latency_mean"] = self.op_last_latency.mean
            out["op_avg_latency_mean"] = self.op_average_latency.mean
        return out

    def to_summary(self, **extras: object) -> "RunSummary":
        """A picklable :class:`RunSummary` for cross-process transport."""
        class_latency: Dict[str, StatsSummary] = {}
        class_deliveries: Dict[str, int] = {}
        class_payload_flits: Dict[str, int] = {}
        for traffic_class, stats in self.collector.classes.items():
            name = traffic_class.value
            class_latency[name] = StatsSummary.from_stats(stats.latency)
            class_deliveries[name] = stats.deliveries
            class_payload_flits[name] = stats.payload_flits
        return RunSummary(
            num_hosts=self.config.num_hosts,
            cycles=self.cycles,
            completed=self.completed,
            operations=self.collector.operations_created,
            op_last_latency=StatsSummary.from_stats(self.op_last_latency),
            op_average_latency=StatsSummary.from_stats(
                self.op_average_latency
            ),
            class_latency=class_latency,
            class_deliveries=class_deliveries,
            class_payload_flits=class_payload_flits,
            extras=dict(extras),
        )

    def report(self) -> str:
        """A human-readable multi-section run report.

        Includes the run header, per-class delivery statistics with
        latency percentiles, and collective-operation statistics.
        """
        from repro.metrics.report import Table

        lines = [
            f"simulation report — N={self.config.num_hosts}, "
            f"{self.config.switch_architecture.value} switches, "
            f"{self.cycles} cycles, "
            f"{'completed' if self.completed else 'BUDGET EXHAUSTED'}",
        ]
        classes = Table(
            "per-class deliveries",
            ["class", "deliveries", "mean", "p50", "p95", "max",
             "payload flits"],
        )
        for traffic_class, stats in sorted(
            self.collector.classes.items(), key=lambda kv: kv[0].value
        ):
            if not stats.deliveries:
                continue
            classes.add_row(
                traffic_class.value,
                stats.deliveries,
                round(stats.latency.mean, 1),
                stats.latency_histogram.percentile(0.50),
                stats.latency_histogram.percentile(0.95),
                stats.latency.max,
                stats.payload_flits,
            )
        lines.append(classes.render())
        if self.op_last_latency.count:
            ops = Table(
                "multicast operations",
                ["metric", "count", "mean", "min", "max"],
            )
            ops.add_row(
                "last-arrival latency",
                self.op_last_latency.count,
                round(self.op_last_latency.mean, 1),
                self.op_last_latency.min,
                self.op_last_latency.max,
            )
            ops.add_row(
                "mean-arrival latency",
                self.op_average_latency.count,
                round(self.op_average_latency.mean, 1),
                round(self.op_average_latency.min, 1),
                round(self.op_average_latency.max, 1),
            )
            lines.append(ops.render())
        return "\n\n".join(lines)


@dataclass(frozen=True)
class StatsSummary:
    """Picklable snapshot of a :class:`RunningStats` accumulator."""

    count: int = 0
    mean: float = 0.0
    min: float = 0.0
    max: float = 0.0

    @classmethod
    def from_stats(cls, stats: RunningStats) -> "StatsSummary":
        """Freeze the headline numbers of one accumulator."""
        if not stats.count:
            return cls()
        return cls(
            count=stats.count, mean=stats.mean, min=stats.min, max=stats.max
        )


@dataclass(frozen=True)
class RunSummary:
    """Everything the experiment reduce steps need from one run.

    :class:`SimulationResult` holds the live metrics collector — cheap to
    inspect in-process but needlessly heavy to ship between worker
    processes.  This summary is a small frozen dataclass of plain floats
    and dicts, safe to pickle across a ``multiprocessing`` pool, with the
    same accessors the experiments already use (``unicast_latency``,
    ``op_last_latency``, ``throughput``).  ``extras`` carries any
    experiment-specific probe values (e.g. buffer occupancy by level).
    """

    num_hosts: int
    cycles: int
    completed: bool
    operations: int
    op_last_latency: StatsSummary
    op_average_latency: StatsSummary
    class_latency: Dict[str, StatsSummary]
    class_deliveries: Dict[str, int]
    class_payload_flits: Dict[str, int]
    extras: Dict[str, object] = field(default_factory=dict)

    def latency(self, traffic_class: Union[TrafficClass, str]) -> StatsSummary:
        """Per-delivery latency summary for one traffic class."""
        name = getattr(traffic_class, "value", traffic_class)
        return self.class_latency.get(name, StatsSummary())

    @property
    def unicast_latency(self) -> StatsSummary:
        """Per-delivery latency of background unicast messages."""
        return self.latency(TrafficClass.UNICAST)

    @property
    def multicast_message_latency(self) -> StatsSummary:
        """Per-delivery latency of hardware multicast messages."""
        return self.latency(TrafficClass.MULTICAST)

    def delivered_flits(
        self, traffic_class: Union[TrafficClass, str]
    ) -> int:
        """In-window delivered payload flits for one class."""
        name = getattr(traffic_class, "value", traffic_class)
        return self.class_payload_flits.get(name, 0)

    def throughput(
        self,
        traffic_class: Union[TrafficClass, str],
        window_cycles: int,
    ) -> float:
        """Delivered payload flits per cycle per host over a window."""
        if window_cycles <= 0:
            return 0.0
        return (
            self.delivered_flits(traffic_class)
            / window_cycles
            / self.num_hosts
        )


def run_workload(
    network: Network,
    workload: Workload,
    max_cycles: Optional[int] = None,
    stall_limit: int = STALL_LIMIT,
) -> SimulationResult:
    """Run ``workload`` on an already-built network to completion.

    Returns a result with ``completed=False`` (rather than raising) when
    the cycle budget runs out — a saturated open-loop run is data, not an
    error.  A genuine stall (no progress and nothing scheduled) still
    raises :class:`~repro.errors.SimulationError`.
    """
    budget = max_cycles if max_cycles is not None else workload.max_cycles_hint()
    workload.start(network)
    for mark in workload.time_marks(network):
        network.sim.mark_time(mark)
    completed = True
    try:
        network.sim.run_until(
            lambda: workload.finished(network),
            max_cycles=budget,
            stall_limit=stall_limit,
        )
    except SimulationError as error:
        if "suspected deadlock" in str(error):
            raise
        completed = False
    return SimulationResult(
        config=network.config,
        cycles=network.sim.now,
        completed=completed,
        collector=network.collector,
    )


def run_simulation(
    config: SimulationConfig,
    workload: Workload,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Build the configured network and run one workload on it.

    When observability has been configured process-wide (see
    :mod:`repro.obs.runtime`), the run is routed through the
    instrumented harness instead; results are identical either way.
    """
    options = obs_runtime.configured()
    if options is not None:
        from repro.obs.harness import run_instrumented

        return run_instrumented(config, workload, max_cycles, options)
    network = build_network(config)
    return run_workload(network, workload, max_cycles=max_cycles)
