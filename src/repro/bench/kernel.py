"""Optimised vs reference data/kernel-plane benchmark (``python -m repro bench``).

Each scenario is run twice from identical configs — once as the
*reference* flavour (``dense_kernel=True, packed=False``: every
component ticked every cycle, per-flit ``Flit`` objects) and once as the
*fast* flavour (active-set kernel plus the packed data plane,
``packed=True``, the production default) — and the two results are
asserted bit-identical before any timing is reported, so a benchmark
run doubles as a differential correctness check of both optimisation
layers at once.

What is timed is :func:`repro.network.simulation.run_workload` only
(network construction excluded); ``cycles/sec`` is simulated cycles per
wall second.  Raw cycles/sec is machine-dependent, so the regression
gate (``--check``) compares the *speedup ratio* — fast over reference on
the same machine in the same process — against the checked-in baseline
``benchmarks/BENCH_kernel.json``: a change that erodes the optimised
flavour's advantage fails the gate no matter how fast the CI host is.
(The artifact keys keep their historical names: ``dense_*`` is the
reference flavour, ``active_*`` the fast flavour.)

Scenario set (names are stable; the baseline is keyed on them):

``e5-low-load`` / ``e5-low-load-smoke``
    The paper's E5 system-size setting (256 hosts, central-buffer
    switches) under low-rate background unicast — long idle gaps, the
    active-set kernel's home turf and the headline >=3x target.
``e5-mcast-stream``
    Low-rate 256-host hardware-multicast stream (E5's traffic class).
``e5-broadcast`` / ``e5-quarter``
    One-shot E5 multicast latency scenarios (255 simulated cycles;
    dominated by busy ticks, so speedups are modest).
``saturation``
    64 hosts at 0.9 offered load — the worst case for an active-set
    kernel, since nearly every component is awake nearly every cycle;
    the packed data plane is what keeps this ahead of the reference.
``saturation-stream``
    The same saturated system moving long (64-flit) packets, so flit
    movement dominates routing: the packed data plane's home turf.
``saturation-hotspot``
    64 hosts driven past the saturation point of one hot destination
    (tree saturation): the bottleneck link runs at 100% while the
    backpressured rest of the system sits credit-blocked.  The fast
    flavour moves the bottleneck traffic as packed spans and lets every
    blocked component sleep; the dense reference ticks all of them every
    cycle.  This is the >=2x speedup gate added with the packed plane.

Wall-clock noise on shared machines can swamp a single run, so
``--repeats N`` times each flavour N times (bit-identity asserted on
every run) and keeps the fastest wall time per flavour; the checked-in
baseline is recorded with repeats so its speedups are minima over a
stable measurement, not one lucky sample.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.schemes import MulticastScheme
from repro.errors import ReproError
from repro.experiments.parallel import Stopwatch
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.manifest import RunManifest
from repro.traffic.base import Workload
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.multicast import RandomMulticastStream, SingleMulticast
from repro.traffic.unicast import UniformRandomUnicast

#: JSON schema tag of the benchmark artifact
BENCH_SCHEMA = "repro.bench.kernel/1"

#: default baseline path and regression tolerance for ``--check``
DEFAULT_BASELINE = "benchmarks/BENCH_kernel.json"
DEFAULT_TOLERANCE = 0.2


class BenchmarkError(ReproError):
    """A benchmark invariant failed (divergence or perf regression)."""


@dataclass(frozen=True)
class Scenario:
    """One benchmark case: a config/workload pair run on both flavours."""

    name: str
    description: str
    num_hosts: int
    make_workload: Callable[[], Workload]
    #: part of the fast CI subset (``--smoke``)
    smoke: bool = False

    def make_config(self, reference: bool) -> SimulationConfig:
        """Reference: dense kernel + object flits; fast: active + packed."""
        config = SimulationConfig(num_hosts=self.num_hosts, seed=1)
        config.dense_kernel = reference
        config.packed = not reference
        return config


def _low_load_unicast(measure_cycles: int) -> Callable[[], Workload]:
    def make() -> Workload:
        return UniformRandomUnicast(
            load=0.005,
            payload_flits=16,
            warmup_cycles=1_000,
            measure_cycles=measure_cycles,
        )
    return make


def _mcast_stream() -> Workload:
    return RandomMulticastStream(
        ops_per_host_per_kilocycle=0.01,
        degree=32,
        payload_flits=64,
        scheme=MulticastScheme.HARDWARE,
        warmup_cycles=1_000,
        measure_cycles=8_000,
    )


def _broadcast() -> Workload:
    return SingleMulticast(
        source=0, degree=255, payload_flits=64,
        scheme=MulticastScheme.HARDWARE,
    )


def _quarter() -> Workload:
    return SingleMulticast(
        source=0, degree=64, payload_flits=64,
        scheme=MulticastScheme.HARDWARE,
    )


def _saturation() -> Workload:
    return UniformRandomUnicast(
        load=0.9,
        payload_flits=16,
        warmup_cycles=500,
        measure_cycles=2_000,
    )


def _saturation_stream() -> Workload:
    return UniformRandomUnicast(
        load=0.9,
        payload_flits=64,
        warmup_cycles=500,
        measure_cycles=2_000,
    )


def _saturation_hotspot() -> Workload:
    # 25 hosts' worth of offered traffic funnelled at one destination:
    # far past the hot link's saturation point, so the run ends with a
    # long tree-saturated drain at exactly 1 flit/cycle
    return HotspotTraffic(
        load=0.5,
        hotspot_fraction=0.4,
        payload_flits=32,
        warmup_cycles=500,
        measure_cycles=1_000,
    )


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="e5-low-load",
        description="256 hosts, background unicast at 0.005 load",
        num_hosts=256,
        make_workload=_low_load_unicast(10_000),
    ),
    Scenario(
        name="e5-low-load-smoke",
        description="e5-low-load at CI scale (4k measured cycles)",
        num_hosts=256,
        make_workload=_low_load_unicast(4_000),
        smoke=True,
    ),
    Scenario(
        name="e5-mcast-stream",
        description="256 hosts, degree-32 multicast stream, low rate",
        num_hosts=256,
        make_workload=_mcast_stream,
    ),
    Scenario(
        name="e5-broadcast",
        description="one 255-destination broadcast on 256 hosts",
        num_hosts=256,
        make_workload=_broadcast,
        smoke=True,
    ),
    Scenario(
        name="e5-quarter",
        description="one 64-destination multicast on 256 hosts",
        num_hosts=256,
        make_workload=_quarter,
        smoke=True,
    ),
    Scenario(
        name="saturation",
        description="64 hosts, background unicast at 0.9 load",
        num_hosts=64,
        make_workload=_saturation,
    ),
    Scenario(
        name="saturation-stream",
        description="64 hosts, 64-flit unicast streams at 0.9 load",
        num_hosts=64,
        make_workload=_saturation_stream,
        smoke=True,
    ),
    Scenario(
        name="saturation-hotspot",
        description="64 hosts tree-saturating one hot destination",
        num_hosts=64,
        make_workload=_saturation_hotspot,
        smoke=True,
    ),
)


@dataclass(frozen=True)
class BenchResult:
    """Timing of one scenario on both flavours (results bit-identical).

    Field names are historical: ``dense_*`` is the reference flavour
    (dense kernel, object flits) and ``active_*`` the fast flavour
    (active-set kernel, packed data plane).
    """

    scenario: str
    num_hosts: int
    cycles: int
    dense_seconds: float
    active_seconds: float
    smoke: bool

    @property
    def speedup(self) -> float:
        """Fast-flavour wall-time advantage over the reference."""
        return self.dense_seconds / self.active_seconds

    @property
    def dense_cycles_per_sec(self) -> float:
        return self.cycles / self.dense_seconds

    @property
    def active_cycles_per_sec(self) -> float:
        return self.cycles / self.active_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "num_hosts": self.num_hosts,
            "cycles": self.cycles,
            "dense_seconds": round(self.dense_seconds, 4),
            "active_seconds": round(self.active_seconds, 4),
            "dense_cycles_per_sec": round(self.dense_cycles_per_sec, 1),
            "active_cycles_per_sec": round(self.active_cycles_per_sec, 1),
            "speedup": round(self.speedup, 3),
            "smoke": self.smoke,
        }


def _run_one(scenario: Scenario, reference: bool) -> Tuple[dict, int, float]:
    """Build and run one flavour; returns (summary, cycles, wall)."""
    network = build_network(scenario.make_config(reference))
    workload = scenario.make_workload()
    watch = Stopwatch()
    result = run_workload(network, workload)
    wall = watch.elapsed()
    return result.summary(), result.cycles, wall


def run_scenario(scenario: Scenario, repeats: int = 1) -> BenchResult:
    """Time one scenario on both flavours; raise on any divergence.

    With ``repeats > 1`` each flavour runs that many times and the
    fastest wall time per flavour is kept, damping scheduler noise;
    bit-identity is asserted on every repeat, not just the fastest.
    """
    if repeats < 1:
        raise BenchmarkError("repeats must be >= 1")
    ref_wall = fast_wall = float("inf")
    for _ in range(repeats):
        ref_summary, ref_cycles, wall = _run_one(scenario, reference=True)
        ref_wall = min(ref_wall, wall)
        fast_summary, fast_cycles, wall = _run_one(
            scenario, reference=False
        )
        fast_wall = min(fast_wall, wall)
        if ref_summary != fast_summary or ref_cycles != fast_cycles:
            raise BenchmarkError(
                f"scenario {scenario.name!r}: fast-flavour result diverged "
                f"from the reference\n  reference: cycles={ref_cycles} "
                f"{ref_summary}\n  fast     : cycles={fast_cycles} "
                f"{fast_summary}"
            )
    return BenchResult(
        scenario=scenario.name,
        num_hosts=scenario.num_hosts,
        cycles=fast_cycles,
        dense_seconds=ref_wall,
        active_seconds=fast_wall,
        smoke=scenario.smoke,
    )


def run_scenarios(
    smoke: bool = False,
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    repeats: int = 1,
) -> List[BenchResult]:
    """Run the selected scenarios (all, the smoke subset, or by name)."""
    selected = list(SCENARIOS)
    if names:
        known = {scenario.name for scenario in SCENARIOS}
        unknown = [name for name in names if name not in known]
        if unknown:
            raise BenchmarkError(
                f"unknown scenario(s) {unknown}; known: {sorted(known)}"
            )
        selected = [s for s in selected if s.name in set(names)]
    elif smoke:
        selected = [s for s in selected if s.smoke]
    results = []
    for scenario in selected:
        if progress is not None:
            progress(f"{scenario.name}: {scenario.description} ...")
        results.append(run_scenario(scenario, repeats=repeats))
    return results


def check_against_baseline(
    results: Sequence[BenchResult],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Speedup-ratio regressions of ``results`` vs a baseline artifact.

    Returns one message per scenario whose fresh speedup fell more than
    ``tolerance`` (fractionally) below the baseline speedup.  Scenarios
    absent from the baseline are ignored, so the scenario set can grow
    without invalidating old baselines.
    """
    recorded = {
        str(row["scenario"]): float(row["speedup"])  # type: ignore[index]
        for row in baseline.get("scenarios", [])  # type: ignore[union-attr]
    }
    failures = []
    for result in results:
        expected = recorded.get(result.scenario)
        if expected is None:
            continue
        floor = expected * (1.0 - tolerance)
        if result.speedup < floor:
            failures.append(
                f"{result.scenario}: speedup {result.speedup:.2f}x fell "
                f"below {floor:.2f}x (baseline {expected:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def render_table(results: Sequence[BenchResult]) -> str:
    """A plain-text table of the benchmark rows."""
    header = (
        f"{'scenario':<20} {'hosts':>5} {'cycles':>8} "
        f"{'dense c/s':>10} {'active c/s':>11} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.scenario:<20} {result.num_hosts:>5} "
            f"{result.cycles:>8} {result.dense_cycles_per_sec:>10.0f} "
            f"{result.active_cycles_per_sec:>11.0f} "
            f"{result.speedup:>7.2f}x"
        )
    return "\n".join(lines)


def profile_scenarios(
    results: Sequence[BenchResult],
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, object]]:
    """Profile each benchmarked scenario's fast flavour once.

    Runs every scenario again with the full profiling subsystem
    attached (kernel profiler, span profiler, lifecycle tracer) and
    returns compact per-scenario summaries for the artifact.  The
    profiled run must reach the same cycle count as the timed run —
    a cheap standing check that profiling observes without steering.
    """
    # lazy import: the profile runner imports this module's SCENARIOS
    from repro.obs.profile.runner import run_profiled

    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    profiles: Dict[str, Dict[str, object]] = {}
    for result in results:
        scenario = by_name[result.scenario]
        if progress is not None:
            progress(f"{scenario.name}: profiling ...")
        report = run_profiled(
            scenario.make_config(reference=False),
            scenario.make_workload(),
            scenario_label=scenario.name,
        )
        if report.cycles != result.cycles:
            raise BenchmarkError(
                f"scenario {scenario.name!r}: profiled run finished at "
                f"cycle {report.cycles}, timed run at {result.cycles} — "
                "profiling must observe, never steer"
            )
        phases = report.lifecycle.phase_summary()
        profiles[result.scenario] = {
            "kernel": report.kernel.snapshot(),
            "spans": report.spans.snapshot(),
            "phases": {
                key: phases[key]
                for key in ("packets", "incomplete", "setup", "blocked",
                            "transfer")
            },
        }
    return profiles


def to_artifact(
    results: Sequence[BenchResult],
    wall_seconds: float,
    profiles: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """The JSON artifact: rows plus a provenance manifest.

    ``profiles`` (from :func:`profile_scenarios`) rides along under its
    own key; baseline checking ignores it, so profiled and unprofiled
    artifacts stay interchangeable as ``--check`` baselines.
    """
    artifact: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "scenarios": [result.to_dict() for result in results],
        "manifest": RunManifest.collect(
            wall_seconds=wall_seconds, bench="kernel"
        ).to_dict(),
    }
    if profiles:
        artifact["profiles"] = profiles
    return artifact


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark the fast flavour (active-set kernel, packed data "
            "plane) against the dense/object reference (results are "
            "asserted bit-identical) and optionally gate on a recorded "
            "speedup baseline."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the fast CI subset",
    )
    parser.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only the named scenario (repeatable)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the benchmark JSON artifact here",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", nargs="?",
        const=DEFAULT_BASELINE,
        help=(
            "fail when any scenario's speedup regresses past --tolerance "
            f"vs this baseline JSON (default: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help=(
            "allowed fractional speedup regression for --check "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help=(
            "time each flavour N times and keep the fastest wall time "
            "(bit-identity asserted on every repeat; default: 1)"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "run each scenario once more with the profiling subsystem "
            "attached and embed per-scenario kernel/span/phase "
            "summaries in the --out artifact"
        ),
    )
    args = parser.parse_args(argv)

    watch = Stopwatch()
    try:
        results = run_scenarios(
            smoke=args.smoke,
            names=args.scenario,
            progress=lambda text: print(text, file=sys.stderr),
            repeats=args.repeats,
        )
    except BenchmarkError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 1
    wall = watch.elapsed()

    print(render_table(results))
    print(f"\n{len(results)} scenario(s), every fast-flavour result "
          f"bit-identical to its dense/object reference, {wall:.1f}s total")

    store_result = None
    if not args.scenario:
        # the result-store gates ride along with every full/smoke run
        # (--scenario means the caller wants one kernel case only)
        from repro.bench.store import (
            DEDUP_SPEEDUP_MIN,
            WARM_RATIO_MAX,
            check_store_result,
            run_store_bench,
        )

        print("store: warm-campaign and coalescing gates ...",
              file=sys.stderr)
        try:
            store_result = run_store_bench(smoke=args.smoke)
        except BenchmarkError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 1
        print(store_result.render())

    profiles: Dict[str, Dict[str, object]] = {}
    if args.profile:
        try:
            profiles = profile_scenarios(
                results,
                progress=lambda text: print(text, file=sys.stderr),
            )
        except BenchmarkError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 1
        print(f"profiled {len(profiles)} scenario(s); summaries go in "
              "the --out artifact")

    if args.out:
        artifact = to_artifact(results, wall_seconds=wall, profiles=profiles)
        if store_result is not None:
            artifact["store"] = store_result.to_dict()
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(artifact, indent=1) + "\n", encoding="utf-8"
        )
        print(f"wrote {path}")

    if args.check:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            print(f"bench: baseline {baseline_path} not found",
                  file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        failures = check_against_baseline(
            results, baseline, tolerance=args.tolerance
        )
        if store_result is not None:
            failures.extend(check_store_result(store_result))
        if failures:
            for failure in failures:
                print(f"bench: REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"speedup gate passed vs {baseline_path} "
              f"(tolerance {args.tolerance:.0%})")
        if store_result is not None:
            print("store gates passed (warm ratio <= "
                  f"{WARM_RATIO_MAX}, coalescing >= "
                  f"{DEDUP_SPEEDUP_MIN}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
