"""Kernel performance benchmarks and the perf-regression gate.

``python -m repro bench`` runs each scenario on both kernels — dense
(tick everything, every cycle) and active-set (wake calendar plus
idle-cycle fast-forward) — asserts the results are bit-identical, and
reports cycles/sec and the active/dense speedup.  See
``docs/performance.md`` for how to read and regenerate the numbers.
"""

from repro.bench.kernel import (
    SCENARIOS,
    BenchResult,
    check_against_baseline,
    main,
    run_scenarios,
)

__all__ = [
    "SCENARIOS",
    "BenchResult",
    "check_against_baseline",
    "main",
    "run_scenarios",
]
