"""Result-store benchmark gates (part of ``python -m repro bench``).

Two fixed-threshold gates guard the store's reason to exist:

*warm campaign*
    a campaign re-run against the journal it just wrote — including
    reopening the store and rebuilding its index — must cost at most
    :data:`WARM_RATIO_MAX` of the cold wall time;
*duplicate coalescing*
    a grid in which every unique spec appears twice (50% duplicates)
    must run at least :data:`DEDUP_SPEEDUP_MIN` times faster through a
    *fresh* store than plainly — the gain must come from coalescing
    alone, not journal hits.

Unlike the kernel scenarios these gates are absolute, not
baseline-relative: the ratios they measure are dominated by how many
simulations were avoided, which does not vary with host speed.

Both campaigns use the same worker as the real experiment grids
(:func:`repro.experiments.common.simulate_summary`), and every gate run
doubles as a correctness check: the resolved ``{key: value}`` mappings
of the plain, cold, warm, and ``jobs=2`` warm runs are asserted
bit-identical before any timing is reported.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.bench.kernel import BenchmarkError
from repro.experiments.common import base_config, simulate_summary
from repro.experiments.parallel import (
    ExecutionPlan,
    RunSpec,
    Stopwatch,
    _plain_outcomes,
    resolve,
)
from repro.store.backend import JournalStore
from repro.store.memo import memoized_outcomes
from repro.traffic.unicast import UniformRandomUnicast

#: warm wall time must be at most this fraction of cold wall time
WARM_RATIO_MAX = 0.1

#: minimum speedup of a 50%-duplicate grid from coalescing alone
DEDUP_SPEEDUP_MIN = 1.8

#: loads swept by the benchmark campaign (unique grid points)
_LOADS = (0.05, 0.1, 0.2, 0.4)


def _spec(
    key_prefix: str, seed: int, load: float, measure_cycles: int
) -> RunSpec:
    """One campaign grid point (16-host unicast, the cheapest system)."""
    return RunSpec(
        key=(key_prefix, seed, load),
        fn=simulate_summary,
        kwargs=dict(
            config=base_config(num_hosts=16, seed=seed),
            workload_cls=UniformRandomUnicast,
            workload_kwargs={
                "load": load,
                "payload_flits": 16,
                "warmup_cycles": 200,
                "measure_cycles": measure_cycles,
            },
            max_cycles=50_000,
        ),
    )


def campaign_plan(smoke: bool = False) -> ExecutionPlan:
    """The warm/cold campaign: a (seed x load) grid of unique specs."""
    measure = 1_500 if smoke else 3_000
    seeds = (1,) if smoke else (1, 2)
    specs = [
        _spec("campaign", seed, load, measure)
        for seed in seeds
        for load in _LOADS
    ]
    return ExecutionPlan("store-campaign", specs)


def dedup_plan(smoke: bool = False) -> ExecutionPlan:
    """A grid where every unique spec appears twice (50% duplicates).

    The duplicate carries a different grid key — as two sweep points
    (or two experiments sharing one plan) would — but hashes to the
    same content address, so the store executes it once.
    """
    measure = 1_500 if smoke else 3_000
    loads = _LOADS
    specs = [
        _spec(prefix, 7, load, measure)
        for load in loads
        for prefix in ("first", "second")
    ]
    return ExecutionPlan("store-dedup", specs)


@dataclass(frozen=True)
class StoreBenchResult:
    """Timings and store counters from one gate run."""

    campaign_runs: int
    cold_seconds: float
    warm_seconds: float
    warm_hits: int
    dedup_runs: int
    dedup_plain_seconds: float
    dedup_coalesced_seconds: float
    dedup_coalesced: int
    entries: int
    segments: int
    bytes: int

    @property
    def warm_ratio(self) -> float:
        """Warm wall time as a fraction of cold (lower is better)."""
        if self.cold_seconds <= 0:
            return float("inf")
        return self.warm_seconds / self.cold_seconds

    @property
    def dedup_speedup(self) -> float:
        """Plain over coalesced wall time on the 50%-duplicate grid."""
        if self.dedup_coalesced_seconds <= 0:
            return float("inf")
        return self.dedup_plain_seconds / self.dedup_coalesced_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign_runs": self.campaign_runs,
            "cold_seconds": round(self.cold_seconds, 4),
            "warm_seconds": round(self.warm_seconds, 4),
            "warm_ratio": round(self.warm_ratio, 4),
            "warm_hits": self.warm_hits,
            "dedup_runs": self.dedup_runs,
            "dedup_plain_seconds": round(self.dedup_plain_seconds, 4),
            "dedup_coalesced_seconds": round(
                self.dedup_coalesced_seconds, 4
            ),
            "dedup_speedup": round(self.dedup_speedup, 3),
            "dedup_coalesced": self.dedup_coalesced,
            "entries": self.entries,
            "segments": self.segments,
            "bytes": self.bytes,
        }

    def render(self) -> str:
        return (
            f"store: cold {self.cold_seconds:.2f}s -> warm "
            f"{self.warm_seconds:.2f}s over {self.campaign_runs} run(s) "
            f"(ratio {self.warm_ratio:.3f}, {self.warm_hits} hits); "
            f"50%-duplicate grid {self.dedup_plain_seconds:.2f}s -> "
            f"{self.dedup_coalesced_seconds:.2f}s "
            f"({self.dedup_speedup:.2f}x from coalescing)"
        )


def run_store_bench(smoke: bool = False) -> StoreBenchResult:
    """Run both gate campaigns; raise on any result divergence."""
    plan = campaign_plan(smoke)
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        store_dir = Path(tmp) / "store"

        plain_values = resolve(_plain_outcomes(plan, jobs=1))

        watch = Stopwatch()
        with JournalStore(store_dir) as store:
            cold = memoized_outcomes(plan, store, jobs=1)
        cold_seconds = watch.elapsed()

        # the warm run pays the full resume cost: reopen, index
        # rebuild, re-hash every spec, decode every value
        watch.restart()
        with JournalStore(store_dir) as store:
            warm = memoized_outcomes(plan, store, jobs=1)
        warm_seconds = watch.elapsed()

        with JournalStore(store_dir) as store:
            warm_pooled = memoized_outcomes(plan, store, jobs=2)
            stats = store.stats()

        for label, outcomes in (
            ("cold", cold), ("warm", warm), ("warm jobs=2", warm_pooled)
        ):
            if resolve(outcomes) != plain_values:
                raise BenchmarkError(
                    f"store bench: {label} campaign values diverged "
                    "from plain execution"
                )
        warm_hits = sum(1 for o in warm if o.source == "hit")
        if warm_hits != len(plan.specs):
            raise BenchmarkError(
                f"store bench: warm campaign expected "
                f"{len(plan.specs)} hits, got {warm_hits}"
            )

    dedup = dedup_plan(smoke)
    watch = Stopwatch()
    dedup_plain = resolve(_plain_outcomes(dedup, jobs=1))
    dedup_plain_seconds = watch.elapsed()

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        watch.restart()
        with JournalStore(Path(tmp) / "store") as store:
            coalesced_outcomes = memoized_outcomes(dedup, store, jobs=1)
        dedup_coalesced_seconds = watch.elapsed()

    if resolve(coalesced_outcomes) != dedup_plain:
        raise BenchmarkError(
            "store bench: coalesced grid values diverged from plain "
            "execution"
        )
    coalesced_count = sum(
        1 for o in coalesced_outcomes if o.source == "coalesced"
    )
    if coalesced_count != len(dedup.specs) // 2:
        raise BenchmarkError(
            f"store bench: expected {len(dedup.specs) // 2} coalesced "
            f"run(s), got {coalesced_count}"
        )

    return StoreBenchResult(
        campaign_runs=len(plan.specs),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        warm_hits=warm_hits,
        dedup_runs=len(dedup.specs),
        dedup_plain_seconds=dedup_plain_seconds,
        dedup_coalesced_seconds=dedup_coalesced_seconds,
        dedup_coalesced=coalesced_count,
        entries=int(stats["entries"]),
        segments=int(stats["segments"]),
        bytes=int(stats["bytes"]),
    )


def check_store_result(result: StoreBenchResult) -> List[str]:
    """Fixed-threshold gate failures (empty when both gates pass)."""
    failures = []
    if result.warm_ratio > WARM_RATIO_MAX:
        failures.append(
            f"store: warm campaign ratio {result.warm_ratio:.3f} "
            f"exceeds {WARM_RATIO_MAX} "
            f"({result.warm_seconds:.2f}s warm vs "
            f"{result.cold_seconds:.2f}s cold)"
        )
    if result.dedup_speedup < DEDUP_SPEEDUP_MIN:
        failures.append(
            f"store: 50%-duplicate grid speedup "
            f"{result.dedup_speedup:.2f}x fell below "
            f"{DEDUP_SPEEDUP_MIN}x"
        )
    return failures
