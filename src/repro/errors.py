"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the simulator derive from :class:`ReproError` so that
callers can catch simulator problems without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigurationError(ReproError):
    """A simulation or component was configured with invalid parameters."""


class TopologyError(ReproError):
    """A topology could not be constructed or is malformed."""


class RoutingError(ReproError):
    """A route could not be computed, or a header could not be decoded."""


class ProtocolError(ReproError):
    """A component observed a violation of the link or switch protocol.

    Protocol errors indicate bugs in the simulator itself (for example a
    flit arriving without credit, or a body flit with no preceding head)
    rather than invalid user input; they are raised eagerly so that such
    bugs cannot silently corrupt simulation statistics.
    """


class BufferError_(ReproError):
    """A buffer invariant was violated (overflow, double free, leak)."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (e.g. suspected deadlock)."""


class DeadlockSuspected(SimulationError):
    """No component made progress for a configured number of cycles.

    A correctly configured network built by this package is deadlock-free;
    this error exists so that experiments with deliberately broken
    parameters (for example central buffers smaller than a packet, used in
    tests of the acceptance rule) fail loudly instead of spinning forever.
    """
