"""Worker backends: three ways to execute a dispatched spec.

A backend owns a set of numbered workers and exposes the four-verb
interface the campaign driver needs — ``start``, ``dispatch``,
``collect``, ``close`` — plus per-worker labels and provenance
manifests.  The contract:

* ``dispatch(worker, spec)`` hands one spec to one idle worker and
  returns immediately;
* ``collect()`` blocks until *something* happens anywhere in the fleet
  and returns either a :class:`CompletedJob` or a
  :class:`WorkerFailure`; every dispatched spec eventually produces
  exactly one of the two (a worker that dies answers through failure);
* a spec's *executed value* must be byte-for-byte what the serial path
  would compute — backends move pickles around, they never transform
  them;
* a worker function that raises is a campaign **error**, not a worker
  failure: the exception propagates to the caller exactly as the
  multiprocessing pool path propagates it today.

Backends:

:class:`SerialBackend`
    executes dispatched specs in-process, one per ``collect`` call, in
    dispatch order.  The always-available reference implementation and
    the engine the hypothesis scheduling properties run on.
:class:`LocalPoolBackend`
    today's multiprocessing path: one pool process per worker, specs
    submitted with ``apply_async``.  Raises
    :class:`~repro.farm.transport.BackendUnavailable` from ``start``
    where pools cannot exist, so the session can fall back to serial.
:class:`SubprocessFleetBackend`
    N independent ``python -m repro.farm.worker`` processes speaking
    the newline-framed JSON protocol over unbuffered pipes — the
    stand-in for a future SSH fleet.  Death detection is stream-shaped:
    EOF, a torn line, a garbage line, a sequence-number mismatch or a
    closed stdin all declare the worker dead.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.experiments.parallel import RunSpec, Stopwatch
from repro.farm import transport
from repro.farm.protocol import (
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    ProtocolError,
    make_frame,
    pack,
    unpack,
)


class FarmError(ReproError):
    """A campaign could not complete (e.g. every worker died)."""


class FarmWorkerError(FarmError):
    """A spec's function raised in a worker and could not be re-raised
    as its original exception type; carries the remote traceback."""

    def __init__(self, worker: str, error: str, remote_traceback: str):
        super().__init__(
            f"worker {worker}: spec raised {error}\n{remote_traceback}"
        )
        self.worker = worker
        self.remote_traceback = remote_traceback


@dataclass(frozen=True)
class CompletedJob:
    """One finished execution: who ran it, what came back, how long."""

    worker: int
    spec: RunSpec
    value: Any
    wall_seconds: float


@dataclass(frozen=True)
class WorkerFailure:
    """One worker is gone; its in-flight spec (if any) needs requeueing."""

    worker: int
    reason: str


CollectEvent = Union[CompletedJob, WorkerFailure]


class WorkerBackend(ABC):
    """The campaign driver's view of a worker fleet (see module docs)."""

    kind: str = "abstract"

    @abstractmethod
    def start(self, workers: int) -> None:
        """Bring up ``workers`` workers (idempotently closeable)."""

    @abstractmethod
    def dispatch(self, worker: int, spec: RunSpec) -> None:
        """Hand ``spec`` to an idle worker; returns immediately."""

    @abstractmethod
    def collect(self) -> CollectEvent:
        """Block until one completion or one failure, fleet-wide."""

    @abstractmethod
    def close(self) -> None:
        """Tear the fleet down (idempotent)."""

    def label(self, worker: int) -> str:
        """Stable human-readable worker name for provenance."""
        return f"w{worker}"

    def manifests(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker provenance manifests, keyed by label."""
        return {}


class SerialBackend(WorkerBackend):
    """In-process execution; dispatches complete in FIFO order."""

    kind = "serial"

    def __init__(self) -> None:
        self._queue: Deque[tuple] = deque()

    def start(self, workers: int) -> None:
        self._queue.clear()

    def dispatch(self, worker: int, spec: RunSpec) -> None:
        self._queue.append((worker, spec))

    def collect(self) -> CollectEvent:
        if not self._queue:
            raise FarmError("serial backend: collect with nothing dispatched")
        worker, spec = self._queue.popleft()
        watch = Stopwatch()
        value = spec.execute()  # errors propagate, as on the serial path
        return CompletedJob(
            worker=worker,
            spec=spec,
            value=value,
            wall_seconds=watch.elapsed(),
        )

    def close(self) -> None:
        self._queue.clear()


def _pool_execute(spec: RunSpec) -> tuple:
    """Module-level pool worker (picklable, REP004)."""
    watch = Stopwatch()
    value = spec.execute()
    return value, watch.elapsed()


class LocalPoolBackend(WorkerBackend):
    """One multiprocessing pool process per farm worker."""

    kind = "local"

    #: seconds between readiness sweeps while waiting on the pool
    POLL_SECONDS = 0.002

    def __init__(self) -> None:
        self._pool: Optional[Any] = None
        self._outstanding: Dict[int, tuple] = {}

    def start(self, workers: int) -> None:
        self._pool = transport.create_pool(workers)

    def dispatch(self, worker: int, spec: RunSpec) -> None:
        assert self._pool is not None, "start() before dispatch()"
        if worker in self._outstanding:
            raise FarmError(f"worker {worker} already has a job in flight")
        self._outstanding[worker] = (
            spec,
            self._pool.apply_async(_pool_execute, (spec,)),
        )

    def collect(self) -> CollectEvent:
        if not self._outstanding:
            raise FarmError("pool backend: collect with nothing dispatched")
        while True:
            for worker in sorted(self._outstanding):
                spec, handle = self._outstanding[worker]
                if not handle.ready():
                    continue
                del self._outstanding[worker]
                value, wall = handle.get()  # worker errors re-raise here
                return CompletedJob(
                    worker=worker,
                    spec=spec,
                    value=value,
                    wall_seconds=wall,
                )
            time.sleep(self.POLL_SECONDS)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._outstanding.clear()


class SubprocessFleetBackend(WorkerBackend):
    """N worker subprocesses over the newline-framed JSON protocol."""

    kind = "fleet"

    def __init__(
        self, extra_env: Optional[Dict[str, str]] = None
    ) -> None:
        self._extra_env = extra_env
        self._procs: Dict[int, Any] = {}
        self._inflight: Dict[int, tuple] = {}  # worker -> (seq, spec)
        self._failed: Deque[WorkerFailure] = deque()
        self._dead: Dict[int, str] = {}
        self._manifests: Dict[str, Dict[str, Any]] = {}
        self._seq = 0

    def start(self, workers: int) -> None:
        for index in range(workers):
            self._procs[index] = transport.spawn_worker(
                self.label(index), extra_env=self._extra_env
            )

    def manifests(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._manifests)

    def _fail(self, worker: int, reason: str) -> WorkerFailure:
        """Declare a worker dead and reap its process."""
        self._dead[worker] = reason
        process = self._procs.pop(worker, None)
        if process is not None:
            transport.reap(process)
        failure = WorkerFailure(worker=worker, reason=reason)
        return failure

    def dispatch(self, worker: int, spec: RunSpec) -> None:
        if worker in self._inflight:
            raise FarmError(f"worker {worker} already has a job in flight")
        if worker in self._dead:
            raise FarmError(f"worker {worker} is dead; cannot dispatch")
        self._seq += 1
        self._inflight[worker] = (self._seq, spec)
        process = self._procs[worker]
        frame = make_frame(FRAME_JOB, seq=self._seq, spec=pack(spec))
        if not transport.write_frame(process.stdin, frame):
            # the death surfaces through collect() like any other, so
            # the campaign's single requeue path handles it
            self._failed.append(
                self._fail(worker, "stdin pipe closed at dispatch")
            )

    def collect(self) -> CollectEvent:
        while True:
            if self._failed:
                return self._failed.popleft()
            streams = {
                process.stdout: worker
                for worker, process in self._procs.items()
            }
            if not streams:
                raise FarmError("fleet backend: no live workers to collect")
            for stream in transport.wait_readable(list(streams)):
                worker = streams[stream]
                event = self._read_event(worker, stream)
                if event is not None:
                    return event

    def _read_event(
        self, worker: int, stream: Any
    ) -> Optional[CollectEvent]:
        """One frame from one worker -> an event, or None to keep going."""
        try:
            frame = transport.read_frame(stream)
        except ProtocolError as error:
            return self._fail(worker, f"torn/garbage frame: {error}")
        if frame is None:
            return self._fail(worker, "worker stream ended (EOF)")
        if frame["type"] == FRAME_HELLO:
            self._manifests[frame["worker"]] = frame["manifest"]
            return None
        pending = self._inflight.get(worker)
        if pending is None:
            return self._fail(
                worker, f"unsolicited {frame['type']} frame"
            )
        seq, spec = pending
        if frame.get("seq") != seq:
            return self._fail(
                worker,
                f"out-of-sync frame: expected seq {seq}, "
                f"got {frame.get('seq')!r}",
            )
        del self._inflight[worker]
        if frame["type"] == FRAME_ERROR:
            self.close()
            packed = frame.get("exc")
            if isinstance(packed, str):
                try:
                    raise unpack(packed)  # the original exception type
                except ProtocolError:
                    pass
            raise FarmWorkerError(
                self.label(worker), frame["error"], frame["traceback"]
            )
        if frame["type"] != FRAME_RESULT:
            return self._fail(
                worker, f"unexpected {frame['type']} frame mid-job"
            )
        try:
            value = unpack(frame["value"])
        except ProtocolError as error:
            return self._fail(worker, f"undecodable result: {error}")
        return CompletedJob(
            worker=worker,
            spec=spec,
            value=value,
            wall_seconds=float(frame["wall_seconds"]),
        )

    def close(self) -> None:
        for worker, process in list(self._procs.items()):
            transport.write_frame(
                process.stdin, make_frame(FRAME_SHUTDOWN)
            )
            transport.reap(process)
            del self._procs[worker]
        self._inflight.clear()
        self._failed.clear()
