"""Sharding and work stealing: who runs which spec, and in what order.

Specs are dealt **round-robin in declared grid order** into one shard
per worker (:func:`shard_specs`), so every shard is balanced to within
one spec and the dealing is a pure function of the plan — any two
campaigns over the same plan and shard count agree on shard membership
before a single worker starts.

At run time the :class:`ShardScheduler` hands each worker the head of
its own shard; a worker whose shard has drained *steals from the tail*
of a victim shard chosen by the steal policy (default: the fullest
remaining shard, ties to the lowest index).  Stealing from the tail
keeps the owner and the thief colliding as late as possible — the
classic work-stealing discipline.

None of this affects results.  Scheduling decides only *where and when*
a spec executes; reduction folds outcomes by key in declared grid
order, so any steal schedule — including the adversarial ones
hypothesis generates in ``tests/farm/test_sharding.py`` — produces a
bit-identical table.  To keep that promise unconditional, the scheduler
is defensive about policies: a policy that returns garbage (no victim,
an empty shard, an out-of-range index) is overridden by the default
choice rather than trusted, so a bad policy can cost locality but never
work.

The scheduler also keeps the per-spec provenance the campaign manifest
reports: which shard a spec was dealt to, every dispatch attempt
(requeues after a worker death mean there can be several), and the
exactly-one worker whose execution completed it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.parallel import Key, RunSpec

#: ``(thief worker index, remaining specs per shard) -> victim index``
StealPolicy = Callable[[int, Sequence[int]], Optional[int]]


def shard_specs(
    specs: Sequence[RunSpec], shards: int
) -> List[List[RunSpec]]:
    """Deal specs round-robin into ``shards`` lists, grid order kept."""
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    dealt: List[List[RunSpec]] = [[] for _ in range(shards)]
    for index, spec in enumerate(specs):
        dealt[index % shards].append(spec)
    return dealt


def default_steal_policy(
    thief: int, remaining: Sequence[int]
) -> Optional[int]:
    """Steal from the fullest other shard; ties to the lowest index."""
    best: Optional[int] = None
    for victim, size in enumerate(remaining):
        if victim == thief or size == 0:
            continue
        if best is None or size > remaining[best]:
            best = victim
    return best


@dataclass
class SpecProvenance:
    """Where one spec lived and who actually executed it."""

    key: Key
    home_shard: int
    #: worker indices this spec was handed to, in dispatch order;
    #: more than one entry means a death requeued it
    attempts: List[int] = field(default_factory=list)
    #: dispatches that pulled the spec from a foreign shard
    stolen: int = 0
    #: requeues after a worker failure
    requeued: int = 0
    #: the one worker whose execution completed this spec
    completed_by: Optional[int] = None


class SchedulerError(ReproError):
    """The scheduler's bookkeeping was violated (a farm bug)."""


class ShardScheduler:
    """Mutable dispatch state for one campaign (see module docs)."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        shards: int,
        steal_policy: Optional[StealPolicy] = None,
    ) -> None:
        self.shards: List[Deque[RunSpec]] = [
            deque(shard) for shard in shard_specs(specs, shards)
        ]
        self._policy = steal_policy or default_steal_policy
        self.provenance: Dict[Key, SpecProvenance] = {}
        for home, shard in enumerate(self.shards):
            for spec in shard:
                self.provenance[spec.key] = SpecProvenance(
                    key=spec.key, home_shard=home
                )
        self.steals = 0
        self.requeues = 0
        self.completed = 0

    @property
    def pending(self) -> int:
        """Specs still queued (not dispatched, not completed)."""
        return sum(len(shard) for shard in self.shards)

    def next_for(self, worker: int) -> Optional[RunSpec]:
        """The next spec for ``worker``: own head, else a stolen tail.

        ``None`` means every shard is empty — there is nothing left to
        dispatch (in-flight specs may still be executing elsewhere).
        """
        own = self.shards[worker]
        if own:
            spec = own.popleft()
            stolen = False
        else:
            victim = self._choose_victim(worker)
            if victim is None:
                return None
            spec = self.shards[victim].pop()
            stolen = True
        record = self.provenance[spec.key]
        record.attempts.append(worker)
        if stolen:
            record.stolen += 1
            self.steals += 1
        return spec

    def _choose_victim(self, thief: int) -> Optional[int]:
        remaining = [len(shard) for shard in self.shards]
        if not any(remaining):
            return None
        victim = self._policy(thief, tuple(remaining))
        if (
            victim is None
            or not isinstance(victim, int)
            or not 0 <= victim < len(self.shards)
            or victim == thief
            or remaining[victim] == 0
        ):
            # an adversarial/buggy policy can cost locality, never work
            victim = default_steal_policy(thief, remaining)
        return victim

    def requeue(self, spec: RunSpec) -> None:
        """Return a dispatched spec whose worker died to its home shard.

        It goes back at the *head*, so the next dispatch from that
        shard retries it before fresh work — keeping completion of the
        oldest work first and the journal's resume window small.
        """
        record = self.provenance[spec.key]
        if record.completed_by is not None:
            raise SchedulerError(
                f"spec {spec.key!r} requeued after completion"
            )
        record.requeued += 1
        self.requeues += 1
        self.shards[record.home_shard].appendleft(spec)

    def record_completion(self, key: Key, worker: int) -> None:
        """Mark ``key`` executed by ``worker`` — exactly once, ever.

        The exactly-one-leader invariant is what makes journaling safe:
        one completion means one ``store.put``, so a resumed campaign
        can trust every journaled entry to be the spec's single
        authoritative result.
        """
        record = self.provenance[key]
        if record.completed_by is not None:
            raise SchedulerError(
                f"spec {key!r} completed twice (workers "
                f"{record.completed_by} and {worker})"
            )
        record.completed_by = worker
        self.completed += 1
