"""``python -m repro.farm.worker`` — one fleet worker process.

The worker speaks the newline-framed JSON protocol of
:mod:`repro.farm.protocol` over its stdio pipes: it announces itself
with a ``hello`` frame (name, pid, and a RunManifest dict — the
per-shard provenance the campaign manifest merges), then loops reading
``job`` frames, executing the pickled spec in-process, and answering
each with exactly one ``result`` (or ``error``) frame.  EOF on stdin or
a ``shutdown`` frame ends the loop cleanly; a torn or garbage job frame
ends it with exit code 3 — a desynchronised worker must die rather than
guess, because the parent's failure handling (requeue the in-flight
spec) is only correct if an unanswered job is never silently executed
twice.

Fault injection (tests and the CI ``farm-smoke`` job only): the
``REPRO_FARM_FAULT`` environment variable — read here, in the entry
point, like every other environment read in this codebase — arms one
deliberate failure, e.g. ``w1:die@2`` ("worker w1, on its 2nd job:
SIGKILL yourself before answering").  Actions: ``die`` (hard exit
mid-job, the SIGKILL stand-in), ``truncate`` (write half a result
frame, then exit — a torn frame on the wire), ``drop`` (execute but
never answer, then exit — a lost protocol message).  Each models a
failure the campaign must survive with a bit-identical table.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from dataclasses import dataclass
from typing import IO, Any, Dict, Optional

from repro.experiments.parallel import RunSpec, Stopwatch
from repro.farm import transport
from repro.farm.protocol import (
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    ProtocolError,
    make_frame,
    pack,
    unpack,
)
from repro.obs.manifest import RunManifest

#: environment variable arming one deliberate failure (tests/CI only)
ENV_FAULT = "REPRO_FARM_FAULT"

#: exit codes: clean, job-frame protocol violation
EXIT_OK = 0
EXIT_PROTOCOL = 3

FAULT_ACTIONS = ("die", "truncate", "drop")


@dataclass(frozen=True)
class Fault:
    """One armed failure: on job number ``job`` (1-based), ``action``."""

    action: str
    job: int
    worker: Optional[str] = None  # None: any worker matches

    def matches(self, worker: str, job: int) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        return self.job == job


def parse_fault(raw: str) -> Optional[Fault]:
    """Parse ``[worker:]action@N``; ``None`` for empty/garbage specs.

    Garbage is ignored rather than fatal: a stray variable must never
    change production behaviour, only tests arm real faults.
    """
    text = raw.strip()
    if not text:
        return None
    worker: Optional[str] = None
    if ":" in text:
        worker, text = text.split(":", 1)
    action, _, number = text.partition("@")
    if action not in FAULT_ACTIONS or not number.isdigit():
        return None
    return Fault(action=action, job=int(number), worker=worker or None)


def _inject(
    fault: Fault, out_stream: IO[bytes], result_frame: Dict[str, Any]
) -> int:
    """Perform the armed failure instead of answering normally."""
    if fault.action == "die":
        os._exit(9)
    if fault.action == "truncate":
        from repro.farm.protocol import encode_frame

        line = encode_frame(result_frame)
        out_stream.write(line[: max(1, len(line) // 2)])
        out_stream.flush()
        os._exit(EXIT_OK)
    # "drop": the result is computed but never sent; exiting cleanly
    # leaves the parent an EOF, the detectable shape of a lost message
    return EXIT_OK


def serve(
    in_stream: IO[bytes],
    out_stream: IO[bytes],
    name: str,
    fault: Optional[Fault] = None,
) -> int:
    """The worker loop; returns the process exit code."""
    hello = make_frame(
        FRAME_HELLO,
        worker=name,
        pid=os.getpid(),
        manifest=RunManifest.collect(farm_worker=name).to_dict(),
    )
    if not transport.write_frame(out_stream, hello):
        return EXIT_OK  # parent is already gone
    executed = 0
    while True:
        try:
            frame = transport.read_frame(in_stream)
        except ProtocolError:
            return EXIT_PROTOCOL
        if frame is None or frame["type"] == FRAME_SHUTDOWN:
            return EXIT_OK
        if frame["type"] != FRAME_JOB:
            return EXIT_PROTOCOL
        seq = frame["seq"]
        try:
            spec = unpack(frame["spec"])
            if not isinstance(spec, RunSpec):
                raise ProtocolError(
                    f"job {seq} payload is not a RunSpec"
                )
        except ProtocolError:
            return EXIT_PROTOCOL
        watch = Stopwatch()
        try:
            value = spec.execute()
        except BaseException as error:  # ships to the parent, re-raised
            answer = make_frame(
                FRAME_ERROR,
                seq=seq,
                error=repr(error),
                traceback=traceback.format_exc(),
            )
            try:
                answer["exc"] = pack(error)
            except Exception:
                pass  # unpicklable exception: repr/traceback only
            if not transport.write_frame(out_stream, answer):
                return EXIT_OK
            continue
        executed += 1
        answer = make_frame(
            FRAME_RESULT,
            seq=seq,
            value=pack(value),
            wall_seconds=watch.elapsed(),
        )
        if fault is not None and fault.matches(name, executed):
            return _inject(fault, out_stream, answer)
        if not transport.write_frame(out_stream, answer):
            return EXIT_OK


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.farm.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.farm.worker",
        description="one fleet worker (spawned by SubprocessFleetBackend)",
    )
    parser.add_argument(
        "--name", default="w?", help="worker label for provenance"
    )
    args = parser.parse_args(argv)
    fault = parse_fault(os.environ.get(ENV_FAULT, ""))
    in_stream, out_stream = transport.stdio()
    return serve(in_stream, out_stream, args.name, fault=fault)


if __name__ == "__main__":
    sys.exit(main())
