"""The farm's only process-spawning and byte-moving module.

Everything that crosses a process boundary on behalf of the farm flows
through here — reprolint rule REP014 forbids direct file opens,
``subprocess`` calls and ``multiprocessing`` constructors anywhere else
under ``repro.farm``, mirroring how REP013 confines result-store file
I/O to :mod:`repro.store.journal`.  Keeping the boundary in one module
keeps the failure model auditable: every way a worker can die or a
frame can tear is handled in the functions below, and the rest of the
farm reasons only in terms of frames, completions and failures.

Mechanics:

* fleet workers are spawned with **unbuffered** pipes (``bufsize=0``),
  so :func:`wait_readable` (a ``select`` over the raw descriptors) is
  truthful — no frame can hide in a Python-side buffer while the
  selector sleeps;
* :func:`read_frame` returns ``None`` at EOF and raises
  :class:`~repro.farm.protocol.ProtocolError` for a torn or garbage
  line; the backend maps both to a dead worker whose in-flight spec is
  requeued;
* :func:`write_frame` reports a closed pipe as ``False`` instead of
  raising, so dispatch can record the failure and let the collect loop
  handle it like any other death;
* :func:`create_pool` is the one constructor of multiprocessing pools
  (the ``LocalPoolBackend`` path), raising
  :class:`BackendUnavailable` in sandboxes that forbid the semaphores
  multiprocessing needs.
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.farm.protocol import decode_frame, encode_frame

#: module run as the fleet worker entry point
WORKER_MODULE = "repro.farm.worker"


class BackendUnavailable(ReproError):
    """The requested backend cannot start in this environment."""


def _repro_root() -> str:
    """Directory to prepend to a worker's PYTHONPATH (``src``)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def worker_command(name: str) -> List[str]:
    """The argv a fleet worker is spawned with."""
    return [sys.executable, "-u", "-m", WORKER_MODULE, "--name", name]


def spawn_worker(
    name: str, extra_env: Optional[Dict[str, str]] = None
) -> "subprocess.Popen[bytes]":
    """Start one fleet worker with unbuffered stdin/stdout pipes.

    The child inherits this process's environment (so test/CI fault
    injection via ``REPRO_FARM_FAULT`` reaches it) with the parent's
    ``repro`` package location prepended to ``PYTHONPATH``; stderr
    passes through for diagnosability.
    """
    env = dict(os.environ)
    root = _repro_root()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        root + os.pathsep + existing if existing else root
    )
    if extra_env:
        env.update(extra_env)
    try:
        return subprocess.Popen(
            worker_command(name),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,
            bufsize=0,
            env=env,
        )
    except OSError as error:
        raise BackendUnavailable(
            f"cannot spawn fleet worker {name!r}: {error}"
        ) from error


def write_frame(stream: IO[bytes], frame: Dict[str, Any]) -> bool:
    """Send one frame; ``False`` means the peer's pipe is gone."""
    try:
        stream.write(encode_frame(frame))
        stream.flush()
    except (BrokenPipeError, OSError, ValueError):
        # ValueError: write to a closed file object
        return False
    return True


def read_frame(stream: IO[bytes]) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` at EOF, ProtocolError on a torn line.

    A line cut by a crashed writer arrives without its newline and is
    reported as torn rather than parsed — exactly the journal's
    crash-recovery rule, applied to a live stream.
    """
    line = stream.readline()
    if not line:
        return None
    return decode_frame(line)


def wait_readable(
    streams: Sequence[IO[bytes]], timeout: Optional[float] = None
) -> List[IO[bytes]]:
    """Block until at least one stream has bytes (or EOF) to read."""
    if not streams:
        return []
    ready, _, _ = select.select(list(streams), [], [], timeout)
    return list(ready)


def stdio() -> Tuple[IO[bytes], IO[bytes]]:
    """The worker side of the pipes: binary stdin/stdout."""
    return sys.stdin.buffer, sys.stdout.buffer


def reap(
    process: "subprocess.Popen[bytes]", timeout: float = 5.0
) -> Optional[int]:
    """Shut a worker process down, escalating politely.

    Closes its stdin (the worker's read loop exits at EOF), waits, and
    kills if it lingers; returns the exit code when one was collected.
    """
    for pipe in (process.stdin, process.stdout):
        if pipe is not None:
            try:
                pipe.close()
            except OSError:
                pass
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        try:
            return process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            return None


def create_pool(processes: int) -> Any:
    """The one constructor of local multiprocessing pools.

    Raises :class:`BackendUnavailable` where pools cannot exist (some
    sandboxes forbid the required semaphores), so callers can fall back
    to the serial backend, mirroring the execution engine's own
    pool-to-serial fallback.
    """
    import multiprocessing

    try:
        return multiprocessing.Pool(processes=processes)
    except (OSError, ImportError) as error:
        raise BackendUnavailable(
            f"multiprocessing pool unavailable: {error}"
        ) from error
