"""The distributed run farm: sharded, resumable campaign execution.

A *campaign* is one :class:`~repro.experiments.parallel.ExecutionPlan`
executed across a fleet of workers instead of a flat multiprocessing
pool.  The farm layers four ideas on top of PR 1's location-independent
``RunSpec`` grids and PR 9's content-addressed result store:

*pluggable backends* (:mod:`repro.farm.backends`)
    ``SerialBackend`` (in-process, the always-available reference),
    ``LocalPoolBackend`` (today's multiprocessing path) and
    ``SubprocessFleetBackend`` (N independent worker processes speaking
    a newline-framed JSON job protocol over pipes — the stand-in for a
    future SSH fleet) all satisfy one tiny dispatch/collect interface;
*sharding with work stealing* (:mod:`repro.farm.scheduler`)
    specs are dealt round-robin into per-worker shards in declared grid
    order; a worker that drains its own shard steals from the tail of
    the fullest remaining shard, so stragglers never leave the rest of
    the fleet idle;
*resumable campaigns* (:mod:`repro.farm.campaign`)
    completed specs are journaled through the result store keyed by
    spec fingerprint the moment they finish, so a killed campaign —
    parent or worker, even mid-journal-append — restarts warm and only
    executes the remainder;
*fault tolerance*
    a worker that dies (SIGKILL), goes silent (EOF) or corrupts a
    protocol frame is declared dead; its in-flight spec is requeued to
    the surviving workers and the campaign completes with the identical
    merged table.

The invariant that makes all of this safe is inherited from the
execution engine: reduction folds outcomes **by key in declared grid
order**, never in completion order, so any backend x any shard count x
any steal schedule is bit-identical to serial execution.
``tests/farm/`` proves it differentially (all 16 experiments), by
hypothesis property (random plans, shard counts, adversarial steal
schedules) and under fault injection.  See ``docs/run-farm.md``.
"""

from repro.farm.backends import (
    CompletedJob,
    LocalPoolBackend,
    SerialBackend,
    SubprocessFleetBackend,
    WorkerBackend,
    WorkerFailure,
)
from repro.farm.campaign import (
    CampaignResult,
    FarmError,
    FarmWorkerError,
    run_campaign,
)
from repro.farm.scheduler import ShardScheduler, shard_specs
from repro.farm.runtime import (
    FarmSession,
    active_farm,
    configure,
    open_farm,
    reset,
)

__all__ = [
    "CampaignResult",
    "CompletedJob",
    "FarmError",
    "FarmSession",
    "FarmWorkerError",
    "LocalPoolBackend",
    "SerialBackend",
    "ShardScheduler",
    "SubprocessFleetBackend",
    "WorkerBackend",
    "WorkerFailure",
    "active_farm",
    "configure",
    "open_farm",
    "reset",
    "run_campaign",
    "shard_specs",
]
