"""The process-wide farm session.

Mirrors :mod:`repro.store.runtime`: CLI entry points call
:func:`configure` once (from ``--farm``/``--shards`` flags) inside a
``try``/``finally`` that ends with :func:`reset`, and
:func:`repro.experiments.parallel.run_outcomes` consults
:func:`active_farm` before choosing an execution path.  Experiments
themselves never know whether their plans ran on a pool, a fleet, or
serially — the farm resolves the result store exactly as
``run_outcomes`` would, so warm/cold behaviour and session tallies are
identical too.

Backend resolution degrades the way the execution engine always has:
``local`` falls back to serial where multiprocessing pools cannot
exist, ``fleet`` falls back to serial where subprocesses cannot spawn.
The fallback is safe because a backend raises
:class:`~repro.farm.transport.BackendUnavailable` from ``start``,
before the campaign emits a single outcome or touches the journal.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.experiments.parallel import (
    ExecutionPlan,
    ProgressFn,
    RunOutcome,
    default_jobs,
)
from repro.farm.backends import (
    LocalPoolBackend,
    SerialBackend,
    SubprocessFleetBackend,
    WorkerBackend,
)
from repro.farm.campaign import CampaignResult, run_campaign
from repro.farm.scheduler import StealPolicy
from repro.farm.transport import BackendUnavailable

#: backend kinds a session can be configured with (CLI ``--farm``)
FARM_KINDS = ("local", "fleet", "serial")


def _backend_candidates(kind: str) -> List[Callable[[], WorkerBackend]]:
    """Constructors to try for ``kind``, preferred first."""
    if kind == "fleet":
        return [SubprocessFleetBackend, SerialBackend]
    if kind == "local":
        return [LocalPoolBackend, SerialBackend]
    if kind == "serial":
        return [SerialBackend]
    raise ValueError(
        f"unknown farm backend {kind!r}; pick from {FARM_KINDS}"
    )


class FarmSession:
    """One configured farm: backend kind, shard count, steal policy.

    The session keeps campaign tallies (campaigns driven, steals,
    requeues, worker deaths survived) and the last
    :class:`~repro.farm.campaign.CampaignResult`, so entry points can
    render per-worker timing and write the merged campaign manifest
    without threading the result through every experiment.
    """

    def __init__(
        self,
        kind: str = "local",
        shards: Optional[int] = None,
        steal_policy: Optional[StealPolicy] = None,
        backend_factory: Optional[
            Callable[[], WorkerBackend]
        ] = None,
    ) -> None:
        if backend_factory is None:
            _backend_candidates(kind)  # validate the kind eagerly
        self.kind = kind
        self.shards = shards
        self.steal_policy = steal_policy
        self.backend_factory = backend_factory
        self.campaigns = 0
        self.steals = 0
        self.requeues = 0
        self.worker_failures = 0
        self.last_result: Optional[CampaignResult] = None

    def _resolve_shards(self, plan: ExecutionPlan) -> int:
        """Shard count for one plan: configured, capped by its size."""
        shards = (
            default_jobs() if self.shards is None else self.shards
        )
        return max(1, min(shards, max(1, len(plan.specs))))

    def run(
        self,
        plan: ExecutionPlan,
        progress: Optional[ProgressFn] = None,
        store: Optional[object] = None,
    ) -> List[RunOutcome]:
        """Execute ``plan`` as a campaign; same contract as the pool.

        ``store=None`` consults the process-wide store session (the
        ``--store-dir`` plumbing) and folds the campaign's outcomes
        into its tallies — precisely what ``run_outcomes`` does on the
        non-farm path, so flipping ``--farm`` on changes scheduling and
        nothing else.
        """
        from repro.store import runtime as store_runtime

        session = None
        refresh = False
        if store is None:
            session = store_runtime.active_session()
            if session is not None:
                store = session.store
                refresh = session.refresh
        shards = self._resolve_shards(plan)
        candidates = (
            [self.backend_factory]
            if self.backend_factory is not None
            else _backend_candidates(self.kind)
        )
        result: Optional[CampaignResult] = None
        for index, factory in enumerate(candidates):
            try:
                result = run_campaign(
                    plan,
                    factory(),
                    shards,
                    store=store,
                    refresh=refresh,
                    progress=progress,
                    steal_policy=self.steal_policy,
                )
                break
            except BackendUnavailable:
                if index == len(candidates) - 1:
                    raise
        assert result is not None
        self.campaigns += 1
        self.steals += result.steals
        self.requeues += result.requeues
        self.worker_failures += sum(
            1 for report in result.workers if report.failure
        )
        self.last_result = result
        if session is not None:
            session.record(result.outcomes)
        return result.outcomes


_active: Optional[FarmSession] = None


def configure(session: Optional[FarmSession]) -> None:
    """Install (or, with ``None``, clear) the process-wide session."""
    global _active
    _active = session


def active_farm() -> Optional[FarmSession]:
    """The active session, or ``None`` when the farm is off."""
    return _active


def reset() -> None:
    """Clear the session (CLI teardown and tests).

    Backends are per-campaign, created and closed inside
    :meth:`FarmSession.run`, so unlike the store runtime there is
    nothing to close here.
    """
    global _active
    _active = None


def open_farm(
    kind: str,
    shards: Optional[int] = None,
    steal_policy: Optional[StealPolicy] = None,
) -> FarmSession:
    """A session for ``kind`` (one of :data:`FARM_KINDS`)."""
    return FarmSession(kind=kind, shards=shards, steal_policy=steal_policy)
