"""The campaign driver: shard a plan, drive a backend, merge the story.

:func:`run_campaign` is the farm's execution loop.  It partitions the
plan against the result store exactly as the memo layer does (store
hits never reach a worker; duplicate specs coalesce onto one leader),
deals the executing leaders into shards (:func:`~repro.farm.scheduler
.shard_specs`), and then drives the backend: keep every live worker
busy, collect completions and failures as they land, journal each
completed leader through the store, and requeue the in-flight spec of
any worker that dies.  The campaign fails only when *every* worker is
dead with work remaining — a single survivor finishes the whole plan.

Bit-identity: the driver decides *where and when* specs execute, never
*what they compute*.  Values come back as the same pickles the
multiprocessing pool path round-trips, outcomes are reduced by key in
declared grid order downstream, and journaling happens only in this
(parent) process after the exactly-one-leader check — so any backend x
shard count x steal schedule x failure pattern yields the same merged
table, and a campaign resumed after a crash completes bit-identically
from its journaled prefix.  ``tests/farm/`` holds the proof: the
differential harness, the hypothesis scheduling properties, and the
fault-injection suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    ProgressFn,
    RunOutcome,
    RunSpec,
)
from repro.farm.backends import (
    CompletedJob,
    FarmError,
    FarmWorkerError,
    WorkerBackend,
    WorkerFailure,
)
from repro.farm.scheduler import (
    ShardScheduler,
    SpecProvenance,
    StealPolicy,
)
from repro.obs.manifest import RunManifest
from repro.store.memo import (
    fanout_duplicates,
    hit_outcomes,
    journal_outcome,
    partition_plan,
    plain_partition,
)

__all__ = [
    "CampaignResult",
    "FarmError",
    "FarmWorkerError",
    "WorkerReport",
    "run_campaign",
]


@dataclass
class WorkerReport:
    """One worker's share of a campaign."""

    label: str
    runs: int = 0
    work_seconds: float = 0.0
    #: reason the worker died mid-campaign, empty if it survived
    failure: str = ""


@dataclass
class CampaignResult:
    """Everything one campaign produced, results and provenance alike."""

    plan: str
    backend: str
    shards: int
    outcomes: List[RunOutcome]
    workers: List[WorkerReport]
    #: per-spec dispatch history for every executing leader
    provenance: Dict[Key, SpecProvenance]
    steals: int = 0
    requeues: int = 0
    #: hello-frame manifests, by worker label (fleet backend only)
    worker_manifests: Dict[str, Dict[str, Any]] = field(
        default_factory=dict
    )

    def manifest(self, **extras: Any) -> RunManifest:
        """One merged campaign manifest, per-worker provenance inside.

        The fleet workers each announced a full
        :class:`~repro.obs.manifest.RunManifest` in their hello frame;
        this folds them (plus dispatch statistics) into the extras of a
        single parent-side manifest, so one JSON file answers both
        "what produced this table?" and "which processes took part?".
        """
        return RunManifest.collect(
            jobs=self.shards,
            farm_backend=self.backend,
            farm_shards=self.shards,
            farm_plan=self.plan,
            farm_steals=self.steals,
            farm_requeues=self.requeues,
            farm_workers={
                report.label: {
                    "runs": report.runs,
                    "work_seconds": round(report.work_seconds, 6),
                    "failure": report.failure,
                    "manifest": self.worker_manifests.get(
                        report.label
                    ),
                }
                for report in self.workers
            },
            **extras,
        )


def run_campaign(
    plan: ExecutionPlan,
    backend: WorkerBackend,
    shards: int,
    store: Optional[Any] = None,
    refresh: bool = False,
    progress: Optional[ProgressFn] = None,
    steal_policy: Optional[StealPolicy] = None,
) -> CampaignResult:
    """Execute ``plan`` as a sharded campaign on ``backend``.

    ``store`` enables the memo layer: hits are emitted without touching
    a worker, duplicates coalesce, and every executed leader is
    journaled *here, on completion* — which is what makes a killed
    campaign resumable (rerun it; the journaled prefix comes back as
    hits and only the unfinished tail executes).  ``progress`` sees
    every outcome with a running count over the whole plan, exactly
    like the pool path.

    Raises :class:`FarmError` when every worker has died with work
    remaining, and :class:`~repro.farm.transport.BackendUnavailable`
    (from ``backend.start``, before any outcome is emitted) when the
    backend cannot run here at all — the runtime layer catches the
    latter to fall back to a simpler backend.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    part = (
        partition_plan(plan, store, refresh=refresh)
        if store is not None
        else plain_partition(plan)
    )
    total = len(plan.specs)
    outcomes: List[RunOutcome] = []
    reports = [
        WorkerReport(label=backend.label(index))
        for index in range(shards)
    ]
    scheduler = ShardScheduler(
        part.leaders, shards, steal_policy=steal_policy
    )

    def emit(outcome: RunOutcome) -> None:
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome, len(outcomes), total)

    if part.leaders:
        # start before emitting anything: BackendUnavailable must
        # escape while a fallback retry is still side-effect free
        backend.start(shards)
    for hit in hit_outcomes(part):
        emit(hit)
    if not part.leaders:
        return CampaignResult(
            plan=plan.name,
            backend=backend.kind,
            shards=shards,
            outcomes=outcomes,
            workers=reports,
            provenance=scheduler.provenance,
        )

    leaders_by_key = {spec.key: spec for spec in part.leaders}
    busy: Dict[int, RunSpec] = {}
    dead: set = set()
    try:
        while scheduler.pending or busy:
            for worker in range(shards):
                if worker in busy or worker in dead:
                    continue
                spec = scheduler.next_for(worker)
                if spec is None:
                    break
                busy[worker] = spec
                backend.dispatch(worker, spec)
            if not busy:
                raise FarmError(
                    f"campaign {plan.name!r}: all {shards} worker(s) "
                    f"dead with {scheduler.pending} spec(s) unfinished"
                )
            event = backend.collect()
            if isinstance(event, WorkerFailure):
                dead.add(event.worker)
                reports[event.worker].failure = event.reason
                lost = busy.pop(event.worker, None)
                if lost is not None:
                    scheduler.requeue(lost)
                continue
            job = event
            busy.pop(job.worker, None)
            scheduler.record_completion(job.spec.key, job.worker)
            label = backend.label(job.worker)
            reports[job.worker].runs += 1
            reports[job.worker].work_seconds += job.wall_seconds
            outcome = RunOutcome(
                key=job.spec.key,
                value=job.value,
                wall_seconds=job.wall_seconds,
                worker=label,
            )
            journal_outcome(
                store,
                part.store_keys.get(outcome.key) if store else None,
                leaders_by_key[outcome.key],
                outcome,
            )
            emit(outcome)
            for duplicate in fanout_duplicates(part, outcome):
                emit(duplicate)
    finally:
        backend.close()
    return CampaignResult(
        plan=plan.name,
        backend=backend.kind,
        shards=shards,
        outcomes=outcomes,
        workers=reports,
        provenance=scheduler.provenance,
        steals=scheduler.steals,
        requeues=scheduler.requeues,
        worker_manifests=backend.manifests(),
    )
