"""The farm's newline-framed JSON job protocol (pure, no I/O).

One frame is one JSON object on one ``\\n``-terminated line — the same
framing discipline as the result-store journal, and for the same
reason: a crashed writer leaves at worst one torn final line, and a
reader can always tell a torn tail from mid-stream corruption.

Frame types (all frames carry ``{"v": PROTOCOL_VERSION}``):

=============  ======================================================
``hello``      worker -> parent, once at startup: worker name, pid,
               and a :class:`~repro.obs.manifest.RunManifest` dict —
               the per-shard provenance the campaign manifest merges
``job``        parent -> worker: a sequence number plus the pickled
               :class:`~repro.experiments.parallel.RunSpec` (base64)
``result``     worker -> parent: the job's sequence number, the
               pickled return value, and the worker-measured wall time
``error``      worker -> parent: the spec's function raised; carries
               the repr and traceback text (the campaign re-raises)
``shutdown``   parent -> worker: drain and exit cleanly
=============  ======================================================

Specs and values travel as base64-wrapped pickles inside the JSON
frame.  That is deliberate: the multiprocessing pool path already
round-trips both through pickle, so the fleet path preserves *exactly*
the fidelity the bit-identity guarantee is calibrated against — no
second serialization dialect to drift.

:func:`decode_frame` is the torn-frame gate: a line that is not valid
JSON, not an object, or missing the version tag raises
:class:`ProtocolError`, and the transport layer treats the worker on
the other end as dead (its in-flight spec is requeued).
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, Dict

from repro.errors import ReproError

#: bump when frame shapes change; mismatched peers refuse each other
PROTOCOL_VERSION = 1

FRAME_HELLO = "hello"
FRAME_JOB = "job"
FRAME_RESULT = "result"
FRAME_ERROR = "error"
FRAME_SHUTDOWN = "shutdown"

#: every frame type the protocol knows, with its required fields
FRAME_FIELDS: Dict[str, tuple] = {
    FRAME_HELLO: ("worker", "pid", "manifest"),
    FRAME_JOB: ("seq", "spec"),
    FRAME_RESULT: ("seq", "value", "wall_seconds"),
    FRAME_ERROR: ("seq", "error", "traceback"),
    FRAME_SHUTDOWN: (),
}


class ProtocolError(ReproError):
    """A frame violated the job protocol (torn, garbage, or alien)."""


def pack(obj: Any) -> str:
    """Pickle ``obj`` and wrap it printable for a JSON frame."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(payload: str) -> Any:
    """Invert :func:`pack`; raises :class:`ProtocolError` on garbage."""
    try:
        return pickle.loads(base64.b64decode(payload.encode("ascii")))
    except Exception as error:  # torn/corrupt payloads take many shapes
        raise ProtocolError(f"undecodable frame payload: {error}") from error


def make_frame(frame_type: str, **fields: Any) -> Dict[str, Any]:
    """Build a frame dict, checking the type and required fields."""
    if frame_type not in FRAME_FIELDS:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    missing = [
        name for name in FRAME_FIELDS[frame_type] if name not in fields
    ]
    if missing:
        raise ProtocolError(
            f"{frame_type} frame is missing field(s) {', '.join(missing)}"
        )
    frame = {"v": PROTOCOL_VERSION, "type": frame_type}
    frame.update(fields)
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """The exact newline-terminated line a frame travels as."""
    return (
        json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line back into a validated frame dict.

    The caller is responsible for framing (handing in exactly one
    newline-terminated line); this function is the validity gate.
    """
    if not line.endswith(b"\n"):
        raise ProtocolError("torn frame: line is not newline-terminated")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError("frame is not a JSON object")
    if frame.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {frame.get('v')!r}, "
            f"speak {PROTOCOL_VERSION}"
        )
    frame_type = frame.get("type")
    if frame_type not in FRAME_FIELDS:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    missing = [
        name for name in FRAME_FIELDS[frame_type] if name not in frame
    ]
    if missing:
        raise ProtocolError(
            f"{frame_type} frame is missing field(s) {', '.join(missing)}"
        )
    return frame
