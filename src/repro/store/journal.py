"""The journal: the only module that touches result-store files.

Everything the store persists flows through here — reprolint rule
REP013 forbids direct ``open()``/file writes anywhere else under
``repro.store``, so the crash-safety story stays auditable in one
place:

* a store directory holds ``segments/seg-NNNNN.jsonl`` files, each an
  **append-only** JSONL stream.  A writer session *claims* a fresh
  segment with ``O_CREAT | O_EXCL`` (no two processes ever share one),
  so concurrent campaigns — or farm shards writing into one shared
  directory — can never interleave partial lines;
* records are written one line at a time through a line-buffered
  handle.  A killed process leaves at worst one torn final line;
* :func:`scan_segment` implements recovery: a file whose last line is
  not newline-terminated lost its tail to a crash — the torn line is
  dropped (the run it described was never acknowledged, so dropping it
  is exact), while a malformed line *before* the tail is real
  corruption and is reported;
* garbage collection rewrites the surviving records into a freshly
  claimed segment and only then removes the old files, so a crash
  mid-gc loses nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

SEGMENTS_DIR = "segments"
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".jsonl"


def segments_dir(store_dir: Path) -> Path:
    """The segment directory under a store root (created on demand)."""
    return Path(store_dir) / SEGMENTS_DIR


def list_segments(store_dir: Path) -> List[Path]:
    """Every segment file, in claim order (name-sorted)."""
    directory = segments_dir(store_dir)
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith(SEGMENT_PREFIX)
        and path.name.endswith(SEGMENT_SUFFIX)
    )


def claim_segment(store_dir: Path) -> Path:
    """Atomically create and own the next free segment file.

    ``O_CREAT | O_EXCL`` makes the claim race-free across processes:
    two writers probing the same index will collide on ``os.open`` and
    one of them moves on to the next number.
    """
    directory = segments_dir(store_dir)
    directory.mkdir(parents=True, exist_ok=True)
    existing = list_segments(store_dir)
    next_index = 1
    if existing:
        last = existing[-1].name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
        try:
            next_index = int(last) + 1
        except ValueError:
            next_index = len(existing) + 1
    while True:
        candidate = directory / (
            f"{SEGMENT_PREFIX}{next_index:05d}{SEGMENT_SUFFIX}"
        )
        try:
            handle = os.open(
                candidate, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            next_index += 1
            continue
        os.close(handle)
        return candidate


def record_line(record: Dict[str, Any]) -> str:
    """The exact newline-terminated line a record journals as.

    Exposed so size accounting (gc ``max_bytes``) measures the same
    bytes the writer will produce.
    """
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )


class JournalWriter:
    """An append-only, line-buffered segment writer."""

    def __init__(self, path: Path, mode: str = "a") -> None:
        if mode not in ("a", "w"):
            raise ValueError("journal files are append ('a') or fresh ('w')")
        self.path = Path(path)
        self._file: TextIO = open(  # noqa: SIM115 - lifetime-managed
            self.path, mode, buffering=1, encoding="utf-8"
        )
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as one newline-terminated line."""
        self._file.write(record_line(record))
        self.records_written += 1

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class SegmentScan:
    """Everything recovery learned from one segment file."""

    path: Path
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: ``(line_number, reason)`` of malformed lines *before* the tail
    errors: List[Tuple[int, str]] = field(default_factory=list)
    #: the final line was cut mid-write by a crash and was dropped
    torn_tail: bool = False
    bytes: int = 0


def scan_segment(path: Path) -> SegmentScan:
    """Read one segment, applying the crash-recovery rules."""
    scan = SegmentScan(path=Path(path))
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        scan.errors.append((0, f"unreadable segment: {error}"))
        return scan
    scan.bytes = len(text.encode("utf-8"))
    if not text:
        return scan
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for number, line in enumerate(lines, start=1):
        is_tail = number == len(lines)
        if is_tail and not complete:
            # a torn tail is an expected crash artifact, not corruption
            scan.torn_tail = True
            continue
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            scan.errors.append((number, f"invalid JSON ({error})"))
            continue
        if not isinstance(record, dict):
            scan.errors.append((number, "record is not a JSON object"))
            continue
        scan.records.append(record)
    return scan


def scan_store(store_dir: Path) -> Iterator[SegmentScan]:
    """Scan every segment of a store, in claim order."""
    for path in list_segments(store_dir):
        yield scan_segment(path)


def remove_segment(path: Path) -> None:
    """Delete one segment file (gc compaction only)."""
    Path(path).unlink()


def write_export(path: Path, records: List[Dict[str, Any]]) -> int:
    """Write records to a standalone JSONL file (``store export``)."""
    with JournalWriter(Path(path), mode="w") as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def read_export(path: Path) -> SegmentScan:
    """Read a standalone JSONL file (``store import``)."""
    return scan_segment(Path(path))


def read_json_file(path: Path) -> Optional[Dict[str, Any]]:
    """Parse one whole-file JSON object, or ``None`` when unreadable."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None
