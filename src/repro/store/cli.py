"""``python -m repro store`` — operate on a result store from the CLI.

Subcommands::

    store stats            index size and on-disk footprint
    store verify           full journal re-scan (crash-recovery audit)
    store gc               compact; drop entries by age and/or size
    store export FILE      dump live entries to a standalone JSONL file
    store import FILE      merge another shard's export into this store

Every subcommand takes ``--dir``; when omitted, the ``REPRO_STORE_DIR``
environment variable names the store (the same variable the experiment
runner honours), and having neither is an error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.store.backend import JournalStore, StoreError
from repro.store.runtime import ENV_STORE_DIR, store_dir_from_env


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="inspect and maintain a result store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        command = sub.add_parser(name, help=help_text)
        command.add_argument(
            "--dir",
            type=Path,
            default=None,
            help=f"store directory (default: ${ENV_STORE_DIR})",
        )
        return command

    add("stats", "print index size and on-disk footprint")
    add("verify", "re-scan the journal and audit crash recovery")
    gc = add("gc", "compact the journal, dropping old/excess entries")
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="drop entries older than this many days",
    )
    gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict oldest entries until the store fits this size",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what gc would do without rewriting anything",
    )
    export = add("export", "write live entries to a JSONL file")
    export.add_argument("file", type=Path, help="output JSONL path")
    imp = add("import", "merge an exported JSONL file into the store")
    imp.add_argument("file", type=Path, help="input JSONL path")
    return parser


def _resolve_dir(flag: Optional[Path]) -> Path:
    directory = flag if flag is not None else store_dir_from_env()
    if directory is None:
        raise SystemExit(
            f"repro store: no store directory; pass --dir or set "
            f"${ENV_STORE_DIR}"
        )
    return directory


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    options = _build_parser().parse_args(argv)
    directory = _resolve_dir(options.dir)
    try:
        store = JournalStore(directory, create=options.command != "stats")
    except StoreError as error:
        print(f"repro store: {error}", file=sys.stderr)
        return 2
    with store:
        if options.command == "stats":
            print(json.dumps(store.stats(), indent=1))
            return 0
        if options.command == "verify":
            report = store.verify()
            print(report.render())
            return 0 if report.ok else 1
        if options.command == "gc":
            report = store.gc(
                max_age_days=options.max_age_days,
                max_bytes=options.max_bytes,
                dry_run=options.dry_run,
            )
            prefix = "[dry-run] " if options.dry_run else ""
            print(prefix + report.render())
            return 0
        if options.command == "export":
            count = store.export(options.file)
            print(f"exported {count} entr{'y' if count == 1 else 'ies'} "
                  f"to {options.file}")
            return 0
        if options.command == "import":
            try:
                count = store.import_file(options.file)
            except StoreError as error:
                print(f"repro store: {error}", file=sys.stderr)
                return 2
            print(
                f"imported {count} new entr"
                f"{'y' if count == 1 else 'ies'} from {options.file}"
            )
            return 0
    raise AssertionError(f"unhandled command {options.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    raise SystemExit(main())
