"""The process-wide result-store session.

Mirrors :mod:`repro.obs.runtime`: CLI entry points call
:func:`configure` once (from ``--store-dir``/``--no-store``/
``--store-refresh`` flags or the ``REPRO_STORE_DIR`` environment
variable) inside a ``try``/``finally`` that ends with :func:`reset`,
and :func:`repro.experiments.parallel.run_outcomes` consults
:func:`active_session` whenever no explicit ``store`` argument was
passed.  Experiments themselves never know whether a store is active —
memoization happens in the parent process, before specs reach the
pool, so worker code is untouched.

Only the entry points read the environment; library code sees a
:class:`StoreSession` or nothing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.parallel import (
    ExecutionPlan,
    ProgressFn,
    RunOutcome,
)
from repro.store.backend import JournalStore
from repro.store.memo import memoized_outcomes

#: environment variable naming the store directory for CLI entry points
ENV_STORE_DIR = "REPRO_STORE_DIR"


class StoreSession:
    """One configured store plus the session's refresh policy.

    The session also tallies what the store did across every plan it
    executed (hits, coalesced duplicates, executed runs, execution
    seconds avoided), so artifact writers — ``benchmarks/_benchlib``,
    the bench runner — can embed a store section without threading
    progress callbacks through every experiment.
    """

    def __init__(self, store: Any, refresh: bool = False) -> None:
        self.store = store
        self.refresh = refresh
        self.hits = 0
        self.coalesced = 0
        self.executed = 0
        self.saved_seconds = 0.0

    def run(
        self,
        plan: ExecutionPlan,
        jobs: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> List[RunOutcome]:
        """Execute a plan through this session's store."""
        outcomes = memoized_outcomes(
            plan,
            self.store,
            jobs=jobs,
            progress=progress,
            refresh=self.refresh,
        )
        self.record(outcomes)
        return outcomes

    def record(self, outcomes: List[RunOutcome]) -> None:
        """Fold a plan's outcomes into the session tallies.

        Called by :meth:`run` and by the farm runtime, which executes
        plans through its own campaign driver but borrows this
        session's store and must keep its bookkeeping truthful.
        """
        for outcome in outcomes:
            if outcome.source == "hit":
                self.hits += 1
            elif outcome.source == "coalesced":
                self.coalesced += 1
            else:
                self.executed += 1
            self.saved_seconds += outcome.saved_seconds

    def stats(self) -> Dict[str, Any]:
        """Store stats plus this session's hit/coalesce tallies."""
        stats = dict(self.store.stats())
        stats.update(
            hits=self.hits,
            coalesced=self.coalesced,
            executed=self.executed,
            saved_seconds=round(self.saved_seconds, 3),
        )
        return stats

    def close(self) -> None:
        """Close the underlying store (idempotent)."""
        self.store.close()


_active: Optional[StoreSession] = None


def configure(session: Optional[StoreSession]) -> None:
    """Install (or, with ``None``, clear) the process-wide session."""
    global _active
    _active = session


def active_session() -> Optional[StoreSession]:
    """The active session, or ``None`` when the store is off."""
    return _active


def reset() -> None:
    """Close and clear the session (CLI teardown and tests)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


def open_session(
    directory: Path, refresh: bool = False
) -> StoreSession:
    """A journal-backed session rooted at ``directory``."""
    return StoreSession(JournalStore(Path(directory)), refresh=refresh)


def store_dir_from_env() -> Optional[Path]:
    """The ``REPRO_STORE_DIR`` directory, or ``None`` when unset.

    Entry points (and only entry points — see module docs) call this
    to honour the environment when no ``--store-dir`` flag was given.
    """
    raw = os.environ.get(ENV_STORE_DIR, "").strip()
    return Path(raw) if raw else None
