"""Content-addressed result store: memoized experiment execution.

Every experiment run in this suite is a pure function of its
:class:`~repro.experiments.parallel.RunSpec` (the determinism contract
of :mod:`repro.experiments.parallel`), which makes results cacheable by
*content*: hash what would be computed, and identical runs — within a
grid, across experiments, across interrupted campaigns — cost one
simulation.

Layers, bottom up:

:mod:`repro.store.hashing`
    canonical deterministic spec fingerprints and SHA-256 keys;
:mod:`repro.store.codec`
    bit-exact JSON encoding of run values (``RunSummary`` et al.);
:mod:`repro.store.journal`
    the only file-I/O module (reprolint REP013): append-only JSONL
    segments with crash recovery;
:mod:`repro.store.backend`
    :class:`MemoryStore` for tests, :class:`JournalStore` on disk,
    plus verify/gc/export maintenance;
:mod:`repro.store.memo`
    the memoizing execution layer (hits / coalesced duplicates /
    journaled misses) that ``run_outcomes`` dispatches through;
:mod:`repro.store.runtime`
    the process-wide session configured by CLI flags and
    ``REPRO_STORE_DIR``;
:mod:`repro.store.cli`
    ``python -m repro store`` (stats, verify, gc, export, import).

See ``docs/result-store.md`` for the operational guide.
"""

from repro.store.backend import (
    GcReport,
    JournalStore,
    MemoryStore,
    StoreEntry,
    StoreError,
    VerifyReport,
)
from repro.store.codec import CodecError, decode_value, encode_value
from repro.store.hashing import (
    STORE_SCHEMA_VERSION,
    SpecHashError,
    spec_fingerprint,
    spec_key,
)
from repro.store.memo import memoized_outcomes, partition_plan
from repro.store.runtime import (
    ENV_STORE_DIR,
    StoreSession,
    open_session,
    store_dir_from_env,
)

__all__ = [
    "CodecError",
    "ENV_STORE_DIR",
    "GcReport",
    "JournalStore",
    "MemoryStore",
    "STORE_SCHEMA_VERSION",
    "SpecHashError",
    "StoreEntry",
    "StoreError",
    "StoreSession",
    "VerifyReport",
    "decode_value",
    "encode_value",
    "memoized_outcomes",
    "open_session",
    "partition_plan",
    "spec_fingerprint",
    "spec_key",
    "store_dir_from_env",
]
