"""Bit-exact JSON encoding of run values for the result store.

A store hit must be indistinguishable from re-running the simulation:
the decoded value has to compare equal to the live one, field for
field, float for float.  JSON gives that for free — ``json.dumps``
emits the shortest round-tripping ``repr`` of every float and
``json.loads`` parses it back to the identical double — so the codec's
job is only to preserve *types* that plain JSON would flatten:

* :class:`~repro.network.simulation.RunSummary` and
  :class:`~repro.network.simulation.StatsSummary` (the values almost
  every experiment grid produces) get explicit tags;
* tuples are tagged so they do not come back as lists;
* mappings are stored as ordered pair lists under a tag, which both
  keeps insertion order and frees plain JSON objects to be tag-only —
  user dict keys can never collide with codec tags.

Values outside this vocabulary raise :class:`CodecError`; the memo
layer then treats the producing spec as uncacheable rather than
journal a lossy approximation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping

from repro.errors import ReproError
from repro.network.simulation import RunSummary, StatsSummary

#: codec vocabulary version (journal entries record it via the store
#: schema; see :data:`repro.store.hashing.STORE_SCHEMA_VERSION`)
TAG_RUN_SUMMARY = "$run_summary"
TAG_STATS = "$stats"
TAG_DICT = "$dict"
TAG_TUPLE = "$tuple"


class CodecError(ReproError):
    """A value cannot be stored bit-exactly."""


def encode_value(value: Any) -> Any:
    """Encode ``value`` into the JSON-able store representation."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, StatsSummary):
        return {
            TAG_STATS: [value.count, value.mean, value.min, value.max]
        }
    if isinstance(value, RunSummary):
        fields = {
            field.name: encode_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {TAG_RUN_SUMMARY: fields}
    if isinstance(value, Mapping):
        pairs = []
        for key, item in value.items():
            if not isinstance(key, (str, int, float, bool)) and (
                key is not None
            ):
                raise CodecError(
                    f"mapping key {key!r} is not a JSON primitive"
                )
            pairs.append([key, encode_value(item)])
        return {TAG_DICT: pairs}
    if isinstance(value, tuple):
        return {TAG_TUPLE: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    raise CodecError(
        f"cannot store value of type {type(value).__module__}."
        f"{type(value).__qualname__}"
    )


def decode_value(obj: Any) -> Any:
    """Invert :func:`encode_value`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    if isinstance(obj, dict):
        if len(obj) == 1:
            (tag, payload), = obj.items()
            if tag == TAG_STATS:
                count, mean, low, high = payload
                return StatsSummary(
                    count=count, mean=mean, min=low, max=high
                )
            if tag == TAG_RUN_SUMMARY:
                fields: Dict[str, Any] = {
                    name: decode_value(item)
                    for name, item in payload.items()
                }
                return RunSummary(**fields)
            if tag == TAG_DICT:
                return {key: decode_value(item) for key, item in payload}
            if tag == TAG_TUPLE:
                return tuple(decode_value(item) for item in payload)
        raise CodecError(f"unrecognised store encoding {obj!r}")
    raise CodecError(f"unrecognised store encoding {obj!r}")


def encodable(value: Any) -> bool:
    """True when ``value`` round-trips through the codec."""
    try:
        encode_value(value)
    except CodecError:
        return False
    return True
