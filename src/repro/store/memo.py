"""The memoizing execution layer between plans and the pool.

Before a plan dispatches to the multiprocessing pool, every spec is
content-addressed (:mod:`repro.store.hashing`) and the plan is
partitioned three ways:

*hits*
    the store already holds the spec's result — the outcome is decoded
    and reported immediately, with ``saved_seconds`` taken from the
    journaled execution time;
*coalesced duplicates*
    several specs in the plan share one content address — one *leader*
    executes and the duplicates fan out from its value the moment it
    completes, each costing zero execution;
*misses*
    everything else executes on the ordinary pool path and is
    journaled (with provenance) as it completes, so a campaign killed
    half-way resumes from its partial results on the next run.

Specs whose kwargs cannot be canonicalised (:class:`SpecHashError`) or
whose values cannot be encoded bit-exactly (:class:`CodecError`) are
*uncacheable*: they always execute and are never journaled — the store
degrades to a no-op rather than approximate.

Every outcome, however obtained, flows through the caller's progress
callback with a running ``done``/``total`` over the *whole* plan, so
``StderrProgress`` renders warm and cold campaigns uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    SOURCE_COALESCED,
    SOURCE_HIT,
    ExecutionPlan,
    Key,
    ProgressFn,
    RunOutcome,
    RunSpec,
    _plain_outcomes,
)
from repro.store.backend import StoreEntry
from repro.store.codec import CodecError, decode_value, encode_value
from repro.store.hashing import SpecHashError, fn_reference, spec_key


@dataclass
class PlanPartition:
    """How a plan's specs split against the store (see module docs)."""

    #: ``(spec, decoded value, journaled execution seconds)``
    hits: List[Tuple[RunSpec, Any, float]] = field(default_factory=list)
    #: specs that will execute (cache misses + uncacheable specs)
    leaders: List[RunSpec] = field(default_factory=list)
    #: leader plan-key -> store key (``None`` for uncacheable specs)
    store_keys: Dict[Key, Optional[str]] = field(default_factory=dict)
    #: leader plan-key -> duplicate specs coalesced onto it
    duplicates: Dict[Key, List[RunSpec]] = field(default_factory=dict)

    @property
    def coalesced_count(self) -> int:
        return sum(len(specs) for specs in self.duplicates.values())


def partition_plan(
    plan: ExecutionPlan, store: Any, refresh: bool = False
) -> PlanPartition:
    """Split a plan into hits, executing leaders, and duplicates.

    ``refresh=True`` ignores journaled results (every cacheable spec
    becomes a leader or duplicate) but keeps coalescing: identical
    specs still cost one execution, and the fresh results are appended
    to the journal where they shadow the stale entries.
    """
    part = PlanPartition()
    pending: Dict[str, Key] = {}  # store key -> leader plan key
    for spec in plan.specs:
        try:
            address = spec_key(spec)
        except SpecHashError:
            part.leaders.append(spec)
            part.store_keys[spec.key] = None
            continue
        if not refresh:
            entry = store.get(address)
            if entry is not None:
                try:
                    value = decode_value(entry.value)
                except CodecError:
                    entry = None  # foreign encoding: recompute
                else:
                    part.hits.append(
                        (spec, value, entry.wall_seconds)
                    )
                    continue
        if address in pending:
            part.duplicates.setdefault(
                pending[address], []
            ).append(spec)
            continue
        pending[address] = spec.key
        part.leaders.append(spec)
        part.store_keys[spec.key] = address
    return part


def plain_partition(plan: ExecutionPlan) -> PlanPartition:
    """A store-free partition: every spec is an uncacheable leader.

    The farm's campaign driver uses this when no store is configured,
    so the same dispatch/journal/fan-out loop serves warm and cold
    campaigns — journaling and coalescing just have nothing to do.
    """
    part = PlanPartition()
    part.leaders = list(plan.specs)
    part.store_keys = {spec.key: None for spec in plan.specs}
    return part


def journal_outcome(
    store: Any, address: Optional[str], spec: RunSpec, outcome: RunOutcome
) -> None:
    """Journal one executed leader's result (no-op when uncacheable).

    Shared by the pool path below and the farm campaign driver, so
    "what gets journaled, when" has exactly one definition: the leader
    completed in *this* process, its value encodes bit-exactly, and its
    spec hashed to a content address.
    """
    if address is None:
        return
    try:
        encoded = encode_value(outcome.value)
    except CodecError:
        return  # uncacheable value: execute-only
    store.put(
        StoreEntry(
            key=address,
            fn=fn_reference(spec),
            result_version=spec.result_version,
            value=encoded,
            wall_seconds=outcome.wall_seconds,
        )
    )


def fanout_duplicates(
    part: PlanPartition, outcome: RunOutcome
) -> List[RunOutcome]:
    """The coalesced outcomes a completed leader resolves."""
    return [
        RunOutcome(
            key=duplicate.key,
            value=outcome.value,
            wall_seconds=0.0,
            source=SOURCE_COALESCED,
            saved_seconds=outcome.wall_seconds,
            worker=outcome.worker,
        )
        for duplicate in part.duplicates.get(outcome.key, ())
    ]


def hit_outcomes(part: PlanPartition) -> List[RunOutcome]:
    """The store-answered outcomes of a partition, in plan order."""
    return [
        RunOutcome(
            key=spec.key,
            value=value,
            wall_seconds=0.0,
            source=SOURCE_HIT,
            saved_seconds=saved,
        )
        for spec, value, saved in part.hits
    ]


def memoized_outcomes(
    plan: ExecutionPlan,
    store: Any,
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    refresh: bool = False,
) -> List[RunOutcome]:
    """Run ``plan`` through the store; values match plain execution.

    Returns one outcome per spec (hits first, then executed leaders in
    completion order, each followed by the duplicates it resolves).
    The reduce step looks values up by key, so this ordering is
    invisible in experiment output — ``tests/store/test_memo.py``
    checks the resolved mapping is identical with and without a store.
    """
    part = partition_plan(plan, store, refresh=refresh)
    total = len(plan.specs)
    outcomes: List[RunOutcome] = []

    def emit(outcome: RunOutcome) -> None:
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome, len(outcomes), total)

    for hit in hit_outcomes(part):
        emit(hit)

    if not part.leaders:
        return outcomes

    def on_executed(
        outcome: RunOutcome, _done: int, _total: int
    ) -> None:
        emit(outcome)
        journal_outcome(
            store,
            part.store_keys.get(outcome.key),
            leaders_by_key[outcome.key],
            outcome,
        )
        for duplicate in fanout_duplicates(part, outcome):
            emit(duplicate)

    leaders_by_key = {spec.key: spec for spec in part.leaders}
    subplan = ExecutionPlan(
        name=plan.name, specs=part.leaders, meta=dict(plan.meta)
    )
    _plain_outcomes(subplan, jobs=jobs, progress=on_executed)
    return outcomes
