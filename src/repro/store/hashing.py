"""Canonical, deterministic content hashing of :class:`RunSpec`\\ s.

The result store keys every cached run by a hash of *what would be
computed*: the worker function's qualified name, the spec's
``result_version`` salt, the store schema version, and a canonical form
of the keyword arguments.  Two specs with the same hash are guaranteed
to describe the same simulation, no matter which experiment declared
them, in which process, or in what kwargs insertion order — which is
exactly what makes cross-experiment dedup and warm campaign resume
safe.

Canonicalisation rules (:func:`canonicalize`):

* primitives (``None``/``bool``/``int``/``float``/``str``) pass through;
* enums become ``{"$enum": "module:Qualname", "name": ...}``;
* dataclass instances (e.g. :class:`~repro.network.config
  .SimulationConfig`) become their class reference plus a by-name field
  mapping, so adding a config field with a new default changes the hash
  — invalidation errs on the side of recomputing;
* mappings become key-sorted pair lists (dict order is erased);
* sets are sorted; lists and tuples stay ordered but keep their type;
* classes and module-level functions become ``"module:qualname"``
  references;
* anything else — lambdas, local functions, open files, live objects —
  raises :class:`SpecHashError`, and the memo layer treats the spec as
  *uncacheable* (always executed, never journaled).

The fingerprint is the canonical structure dumped as sorted-key JSON;
the key is its SHA-256.  Nothing here depends on ``PYTHONHASHSEED``,
process identity, or wall time — ``tests/store/test_hashing.py``
enforces dict-order invariance, cross-process stability, and
sensitivity to every field.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping

from repro.errors import ReproError
from repro.experiments.parallel import RunSpec

#: bump when the journal record layout or hash derivation changes; the
#: version participates in every key, so old stores simply stop hitting
STORE_SCHEMA_VERSION = 1


class SpecHashError(ReproError):
    """A spec's kwargs contain a value with no canonical form."""


def _qualref(obj: Any) -> str:
    """``module:qualname`` reference for a class or function."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname:
        raise SpecHashError(
            f"object {obj!r} has no stable module:qualname reference"
        )
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise SpecHashError(
            f"{module}:{qualname} is not a module-level callable; its "
            "identity is not stable across processes"
        )
    return f"{module}:{qualname}"


def canonicalize(value: Any) -> Any:
    """A JSON-able canonical form of ``value`` (see module docs)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"$enum": _qualref(type(value)), "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"$dc": _qualref(type(value)), "fields": fields}
    if isinstance(value, Mapping):
        pairs = [
            [canonicalize(key), canonicalize(item)]
            for key, item in value.items()
        ]
        pairs.sort(key=lambda pair: _dumps(pair[0]))
        return {"$map": pairs}
    if isinstance(value, tuple):
        return {"$tuple": [canonicalize(item) for item in value]}
    if isinstance(value, list):
        return {"$list": [canonicalize(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        items = sorted(
            (canonicalize(item) for item in value), key=_dumps
        )
        return {"$set": items}
    if isinstance(value, type):
        return {"$type": _qualref(value)}
    if callable(value):
        return {"$fn": _qualref(value)}
    raise SpecHashError(
        f"cannot canonicalize {type(value).__module__}."
        f"{type(value).__qualname__} value {value!r}"
    )


def _dumps(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(spec: RunSpec) -> str:
    """The canonical JSON text a spec's key is hashed from.

    Deliberately excludes ``spec.key`` (the grid coordinate): two grid
    points that describe the same simulation must share a fingerprint
    for duplicate-spec coalescing and cross-experiment dedup to work.
    """
    return _dumps(
        {
            "store_schema": STORE_SCHEMA_VERSION,
            "fn": _qualref(spec.fn),
            "result_version": spec.result_version,
            "kwargs": canonicalize(dict(spec.kwargs)),
        }
    )


def spec_key(spec: RunSpec) -> str:
    """The spec's content address: SHA-256 of its fingerprint."""
    return hashlib.sha256(
        spec_fingerprint(spec).encode("utf-8")
    ).hexdigest()


def fn_reference(spec: RunSpec) -> str:
    """``module:qualname`` of the spec's worker (journal provenance)."""
    return _qualref(spec.fn)
