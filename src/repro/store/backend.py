"""Result-store backends: in-memory for tests, journaled for disk.

Both backends speak the same tiny interface — ``get``/``put``/
``stats``/``close`` over :class:`StoreEntry` values — which is all the
memo layer (:mod:`repro.store.memo`) needs.  :class:`JournalStore`
additionally owns the operational surface the ``python -m repro
store`` CLI exposes: :meth:`verify` (full journal re-scan),
:meth:`gc` (compaction by age/size), and :meth:`export`/
:meth:`import_file` (farm-shard exchange).

On-disk layout (all file traffic via :mod:`repro.store.journal`)::

    <store dir>/segments/seg-00001.jsonl
    <store dir>/segments/seg-00002.jsonl      # one per writer session
    ...

Each segment starts with a ``repro.store.segment/1`` header carrying
the store schema version and a :class:`~repro.obs.manifest.RunManifest`
provenance dict, followed by ``repro.store.entry/1`` records.  The
index is rebuilt from the segments on open — the newest entry for a
key wins, which is also what makes ``--store-refresh`` an append
(newer results shadow stale ones) rather than an in-place mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.manifest import RunManifest, parse_iso, utc_now_iso
from repro.obs.sinks import (
    SCHEMA_STORE_ENTRY,
    SCHEMA_STORE_SEGMENT,
    validate_record,
)
from repro.store import journal
from repro.store.hashing import STORE_SCHEMA_VERSION


class StoreError(ReproError):
    """A result-store operation failed."""


@dataclass(frozen=True)
class StoreEntry:
    """One cached run: its content address, value, and provenance."""

    key: str
    fn: str
    result_version: int
    value: Any  # codec-encoded (see repro.store.codec)
    wall_seconds: float = 0.0
    created_at: str = ""
    git_sha: str = ""

    def to_record(self) -> Dict[str, Any]:
        """The journal line for this entry."""
        return {
            "schema": SCHEMA_STORE_ENTRY,
            "key": self.key,
            "fn": self.fn,
            "result_version": self.result_version,
            "value": self.value,
            "wall_seconds": self.wall_seconds,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "StoreEntry":
        """Rebuild an entry from a journal line (validated upstream)."""
        return cls(
            key=record["key"],
            fn=record["fn"],
            result_version=record["result_version"],
            value=record["value"],
            wall_seconds=float(record.get("wall_seconds", 0.0)),
            created_at=str(record.get("created_at", "")),
            git_sha=str(record.get("git_sha", "")),
        )


class MemoryStore:
    """A dict-backed store for tests and single-process runs."""

    def __init__(self) -> None:
        self._entries: Dict[str, StoreEntry] = {}
        self.puts = 0

    def get(self, key: str) -> Optional[StoreEntry]:
        return self._entries.get(key)

    def put(self, entry: StoreEntry) -> None:
        self._entries[entry.key] = entry
        self.puts += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": "memory",
            "entries": len(self._entries),
            "segments": 0,
            "bytes": 0,
        }

    def close(self) -> None:
        """Nothing to release."""


@dataclass
class VerifyReport:
    """What a full journal re-scan found."""

    entries: int = 0
    segments: int = 0
    bytes: int = 0
    #: crash-recovered torn final lines (expected artifacts, not errors)
    torn_tails: int = 0
    #: entries whose store schema predates the running code
    stale_schema: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the index is clean (torn tails are allowed)."""
        return not self.errors

    def render(self) -> str:
        verdict = "clean" if self.ok else "CORRUPT"
        lines = [
            f"store index {verdict}: {self.entries} live entr"
            f"{'y' if self.entries == 1 else 'ies'} in "
            f"{self.segments} segment(s), {self.bytes} bytes",
        ]
        if self.torn_tails:
            lines.append(
                f"{self.torn_tails} torn tail(s) recovered from "
                "crashed writer sessions"
            )
        if self.stale_schema:
            lines.append(
                f"{self.stale_schema} entr"
                f"{'y' if self.stale_schema == 1 else 'ies'} from an "
                "older store schema (ignored by lookups; gc reclaims "
                "them)"
            )
        lines.extend(f"ERROR: {message}" for message in self.errors)
        return "\n".join(lines)


@dataclass
class GcReport:
    """What one compaction pass kept and dropped."""

    kept: int = 0
    dropped_age: int = 0
    dropped_size: int = 0
    dropped_stale: int = 0
    segments_removed: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    def render(self) -> str:
        dropped = self.dropped_age + self.dropped_size + self.dropped_stale
        return (
            f"gc: kept {self.kept} entr{'y' if self.kept == 1 else 'ies'}, "
            f"dropped {dropped} (age {self.dropped_age}, size "
            f"{self.dropped_size}, stale-schema {self.dropped_stale}), "
            f"compacted {self.segments_removed} segment(s): "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


class JournalStore:
    """The journaled on-disk backend (see module docs)."""

    def __init__(self, directory: Path, create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise StoreError(f"no store at {self.directory}")
        self._writer: Optional[journal.JournalWriter] = None
        self._index: Dict[str, StoreEntry] = {}
        self._session_created_at = ""
        self._session_git_sha = ""
        self._load()

    # ------------------------------------------------------------------
    # the memo-layer interface
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[StoreEntry]:
        """The newest journaled entry for ``key`` (microseconds)."""
        return self._index.get(key)

    def put(self, entry: StoreEntry) -> None:
        """Journal one entry (session provenance stamped here)."""
        writer = self._ensure_writer()
        stamped = StoreEntry(
            key=entry.key,
            fn=entry.fn,
            result_version=entry.result_version,
            value=entry.value,
            wall_seconds=entry.wall_seconds,
            created_at=entry.created_at or self._session_created_at,
            git_sha=entry.git_sha or self._session_git_sha,
        )
        writer.write(stamped.to_record())
        self._index[stamped.key] = stamped

    def stats(self) -> Dict[str, Any]:
        """Index size and on-disk footprint."""
        segments = journal.list_segments(self.directory)
        return {
            "backend": "journal",
            "dir": str(self.directory),
            "entries": len(self._index),
            "segments": len(segments),
            "bytes": sum(path.stat().st_size for path in segments),
        }

    def close(self) -> None:
        """Close the writer session (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "JournalStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operational surface (python -m repro store ...)
    # ------------------------------------------------------------------
    def verify(self) -> VerifyReport:
        """Re-scan every segment and cross-check the recovery rules."""
        report = VerifyReport()
        live: Dict[str, StoreEntry] = {}
        for scan in journal.scan_store(self.directory):
            report.segments += 1
            report.bytes += scan.bytes
            if scan.torn_tail:
                report.torn_tails += 1
            for line, reason in scan.errors:
                report.errors.append(
                    f"{scan.path.name}:{line}: {reason}"
                )
            segment_schema = STORE_SCHEMA_VERSION
            saw_header = False
            for position, record in enumerate(scan.records):
                problem = validate_record(record)
                if problem is not None:
                    report.errors.append(
                        f"{scan.path.name}: record {position + 1}: "
                        f"{problem}"
                    )
                    continue
                schema = record.get("schema")
                if schema == SCHEMA_STORE_SEGMENT:
                    if position != 0:
                        report.errors.append(
                            f"{scan.path.name}: segment header not "
                            "first in file"
                        )
                    segment_schema = record["store_schema"]
                    saw_header = True
                    continue
                if schema != SCHEMA_STORE_ENTRY:
                    report.errors.append(
                        f"{scan.path.name}: record {position + 1}: "
                        f"unexpected schema {schema!r}"
                    )
                    continue
                if segment_schema != STORE_SCHEMA_VERSION:
                    report.stale_schema += 1
                    continue
                entry = StoreEntry.from_record(record)
                live[entry.key] = entry
            if scan.records and not saw_header:
                report.errors.append(
                    f"{scan.path.name}: missing segment header"
                )
        report.entries = len(live)
        if len(live) != len(self._index):
            report.errors.append(
                f"index drift: scan found {len(live)} live entries, "
                f"open index holds {len(self._index)}"
            )
        return report

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Compact the journal, dropping aged/excess/stale entries.

        Entries are dropped when older than ``max_age_days``, when the
        store would exceed ``max_bytes`` (oldest evicted first), or
        when journaled under an older store schema (their keys can
        never hit again).  Survivors are rewritten into one freshly
        claimed segment before the old segments are removed, so a
        crash mid-gc never loses live data.
        """
        report = GcReport()
        old_segments = journal.list_segments(self.directory)
        report.bytes_before = sum(
            path.stat().st_size for path in old_segments
        )
        survivors: List[Tuple[float, StoreEntry]] = []
        cutoff: Optional[float] = None
        if max_age_days is not None:
            now = parse_iso(utc_now_iso())
            assert now is not None
            cutoff = now - max_age_days * 86400.0
        for entry in self._index.values():
            created = parse_iso(entry.created_at)
            if cutoff is not None and (
                created is None or created < cutoff
            ):
                report.dropped_age += 1
                continue
            survivors.append((created or 0.0, entry))
        # Stale-schema entries never make it into the in-memory index
        # (the loader skips them), so compaction drops them by
        # construction; count them off the raw scan for the report.
        for scan in journal.scan_store(self.directory):
            segment_schema = STORE_SCHEMA_VERSION
            for record in scan.records:
                schema = record.get("schema")
                if schema == SCHEMA_STORE_SEGMENT and isinstance(
                    record.get("store_schema"), int
                ):
                    segment_schema = record["store_schema"]
                elif (
                    schema == SCHEMA_STORE_ENTRY
                    and segment_schema != STORE_SCHEMA_VERSION
                ):
                    report.dropped_stale += 1
        survivors.sort(key=lambda pair: pair[0])
        if max_bytes is not None:
            # evict oldest-first until the newest survivors fit
            kept: List[Tuple[float, StoreEntry]] = []
            total = 0
            for created, entry in reversed(survivors):
                size = len(journal.record_line(entry.to_record()))
                if total + size > max_bytes:
                    report.dropped_size += 1
                    continue
                total += size
                kept.append((created, entry))
            survivors = list(reversed(kept))
        report.kept = len(survivors)
        if dry_run:
            report.bytes_after = report.bytes_before
            return report
        self.close()
        segment = journal.claim_segment(self.directory)
        with journal.JournalWriter(segment) as writer:
            writer.write(self._segment_header())
            for _, entry in survivors:
                writer.write(entry.to_record())
        for path in old_segments:
            journal.remove_segment(path)
            report.segments_removed += 1
        remaining = journal.list_segments(self.directory)
        report.bytes_after = sum(
            path.stat().st_size for path in remaining
        )
        self._index = {entry.key: entry for _, entry in survivors}
        return report

    def export(self, path: Path) -> int:
        """Write every live entry (plus a header) to one JSONL file."""
        records = [self._segment_header()]
        records.extend(
            entry.to_record() for entry in self._index.values()
        )
        return journal.write_export(Path(path), records) - 1

    def import_file(self, path: Path) -> int:
        """Merge entries exported by another shard into this store."""
        scan = journal.read_export(Path(path))
        if scan.errors:
            first_line, reason = scan.errors[0]
            raise StoreError(
                f"{path}: line {first_line}: {reason}"
            )
        imported = 0
        for record in scan.records:
            if record.get("schema") != SCHEMA_STORE_ENTRY:
                continue
            if validate_record(record) is not None:
                raise StoreError(
                    f"{path}: malformed store entry {record!r}"
                )
            entry = StoreEntry.from_record(record)
            if entry.key in self._index:
                continue
            self.put(entry)
            imported += 1
        return imported

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Rebuild the index from the segments (newest entry wins)."""
        for scan in journal.scan_store(self.directory):
            segment_schema = STORE_SCHEMA_VERSION
            for record in scan.records:
                schema = record.get("schema")
                if schema == SCHEMA_STORE_SEGMENT:
                    raw = record.get("store_schema")
                    segment_schema = raw if isinstance(raw, int) else -1
                    continue
                if schema != SCHEMA_STORE_ENTRY:
                    continue
                if segment_schema != STORE_SCHEMA_VERSION:
                    continue  # stale layout: keys can never match
                if validate_record(record) is not None:
                    continue  # verify() reports it; lookups skip it
                entry = StoreEntry.from_record(record)
                self._index[entry.key] = entry

    def _ensure_writer(self) -> journal.JournalWriter:
        """Claim this session's segment on first write."""
        if self._writer is None:
            manifest = RunManifest.collect(store="journal-session")
            self._session_created_at = manifest.created_at
            self._session_git_sha = manifest.git_sha
            segment = journal.claim_segment(self.directory)
            self._writer = journal.JournalWriter(segment)
            self._writer.write(self._segment_header(manifest))
        return self._writer

    def _segment_header(
        self, manifest: Optional[RunManifest] = None
    ) -> Dict[str, Any]:
        """The provenance header opening every segment."""
        if manifest is None:
            manifest = RunManifest.collect(store="journal-session")
            if not self._session_created_at:
                self._session_created_at = manifest.created_at
                self._session_git_sha = manifest.git_sha
        return {
            "schema": SCHEMA_STORE_SEGMENT,
            "store_schema": STORE_SCHEMA_VERSION,
            "created_at": manifest.created_at,
            "manifest": manifest.to_dict(),
        }
