"""``python -m repro``: the package's command-line front door.

Subcommands:

``demo`` (the default)
    The paper's headline comparison — one multicast under all three
    schemes — on a small system.  The three cases are independent
    simulations, so they run through the same
    :mod:`repro.experiments.parallel` plan machinery as the full
    experiment suite: ``--jobs 3`` fans them out over worker
    processes, ``--jobs 1`` runs them serially; the table is identical
    either way.
``inspect FILE...``
    Summarise observability artifacts (run manifests, metrics/trace
    JSONL) produced by the runner's ``--metrics-out``/``--trace-out``
    flags; see :mod:`repro.obs.inspect`.
``lint [PATHS...]``
    Run the reprolint static-analysis gate over the tree; see
    :mod:`repro.analysis` and ``docs/static-analysis.md``.
``bench [--smoke] [--check [BASELINE]]``
    Benchmark the active-set kernel against the dense reference and
    gate on the recorded speedup baseline; see :mod:`repro.bench` and
    ``docs/performance.md``.
``profile [--scenario NAME] [--arch cb|ib|both] [--export-trace FILE]``
    Run one bench scenario with the profiling subsystem attached and
    report kernel attribution, worm phase latencies and link
    utilisation; optionally export a Chrome-trace JSON.  See
    :mod:`repro.obs.profile` and ``docs/observability.md``.
``store {stats,verify,gc,export,import}``
    Inspect and maintain a content-addressed result store (the
    ``--store-dir``/``REPRO_STORE_DIR`` journal the experiment runner
    memoizes through); see :mod:`repro.store` and
    ``docs/result-store.md``.

For the full evaluation use ``python -m repro.experiments.runner``.
Unknown subcommands exit with status 2 and the usage summary below.
"""

from __future__ import annotations

import argparse
import sys

USAGE = """\
usage: python -m repro [COMMAND] [OPTIONS]

commands:
  demo     run the headline three-scheme multicast comparison (default)
  inspect  summarise observability JSONL/manifest artifacts
  lint     run the reprolint static-analysis gate
  bench    benchmark the active-set kernel vs the dense reference
  profile  profile one scenario (kernel, worm phases, Chrome trace)
  store    inspect/maintain the result store (stats, verify, gc, ...)

`python -m repro COMMAND --help` shows each command's options.
Full evaluation: python -m repro.experiments.runner --all
"""

from repro import (
    MulticastScheme,
    SimulationConfig,
    SingleMulticast,
    SwitchArchitecture,
    __version__,
    run_simulation,
)
from repro.experiments.parallel import ExecutionPlan, RunSpec, execute_plan
from repro.metrics.report import Table

#: (label, switch architecture, multicast scheme) of each demo case
DEMO_CASES = [
    ("central buffer + hardware worms",
     SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.HARDWARE),
    ("input buffers  + hardware worms",
     SwitchArchitecture.INPUT_BUFFER, MulticastScheme.HARDWARE),
    ("central buffer + software binomial",
     SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.SOFTWARE),
]


def _run_demo_case(architecture, scheme):
    """Worker: one 8-destination multicast; returns the two latencies."""
    result = run_simulation(
        SimulationConfig(
            num_hosts=64, switch_architecture=architecture, seed=1
        ),
        SingleMulticast(
            source=0, degree=8, payload_flits=64, scheme=scheme
        ),
    )
    (operation,) = result.collector.completed_operations()
    return {
        "last": operation.last_latency,
        "average": operation.average_latency,
    }


def main(argv=None) -> int:
    """Dispatch to a subcommand (default: the demo)."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and not argv[0].startswith("-"):
        command, rest = argv[0], argv[1:]
        if command == "inspect":
            from repro.obs.inspect import main as inspect_main

            return inspect_main(rest)
        if command == "lint":
            from repro.analysis.cli import main as lint_main

            return lint_main(rest)
        if command == "bench":
            from repro.bench.kernel import main as bench_main

            return bench_main(rest)
        if command == "profile":
            from repro.obs.profile.runner import main as profile_main

            return profile_main(rest)
        if command == "store":
            from repro.store.cli import main as store_main

            return store_main(rest)
        if command == "demo":
            argv = rest
        else:
            print(f"python -m repro: unknown command {command!r}\n",
                  file=sys.stderr)
            print(USAGE, file=sys.stderr, end="")
            return 2
    if argv and argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    parser = argparse.ArgumentParser(
        description="Demo: one multicast under all three schemes."
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the demo cases (default: 1)",
    )
    args = parser.parse_args(argv)

    print(f"repro {__version__} — multidestination worms in switch-based "
          "parallel systems (ISCA 1997 reproduction)")
    print()
    table = Table(
        "Demo: 8-destination multicast on a 64-host BMIN [cycles]",
        ["scheme", "last arrival", "mean arrival"],
    )
    plan = ExecutionPlan(
        "demo",
        [
            RunSpec(
                key=(label,),
                fn=_run_demo_case,
                kwargs=dict(architecture=architecture, scheme=scheme),
            )
            for label, architecture, scheme in DEMO_CASES
        ],
    )
    from repro.store import runtime as store_runtime

    store_dir = store_runtime.store_dir_from_env()
    if store_dir is not None:
        store_runtime.configure(store_runtime.open_session(store_dir))
    try:
        results = execute_plan(plan, jobs=args.jobs)
    finally:
        store_runtime.reset()
    for label, _, _ in DEMO_CASES:
        case = results[(label,)]
        table.add_row(label, case["last"], round(case["average"], 1))
    table.write()
    print()
    print("Full evaluation:   python -m repro.experiments.runner --all")
    print("                   (add --jobs N to parallelize, --chart/--csv "
          "for extra output)")
    print("Telemetry:         python -m repro.experiments.runner "
          "--experiment e1 --metrics-out m.jsonl")
    print("                   python -m repro inspect m.jsonl")
    print("Static analysis:   python -m repro lint")
    print("Kernel benchmark:  python -m repro bench --smoke")
    print("Profiling:         python -m repro profile --arch cb "
          "--export-trace trace.json")
    print("Benchmarks:        pytest benchmarks/ --benchmark-only")
    print("Examples:          python examples/quickstart.py")
    return 0


if __name__ == "__main__":
    sys.exit(main())
