"""``python -m repro``: a quick demonstration of the library.

Runs the paper's headline comparison (one multicast under all three
schemes) on a small system and points at the experiment runner for the
full evaluation.  For everything else use
``python -m repro.experiments.runner``.
"""

from __future__ import annotations

import sys

from repro import (
    MulticastScheme,
    SimulationConfig,
    SingleMulticast,
    SwitchArchitecture,
    __version__,
    run_simulation,
)
from repro.metrics.report import Table


def main() -> int:
    """Run the demo and print pointers to the full harness."""
    print(f"repro {__version__} — multidestination worms in switch-based "
          "parallel systems (ISCA 1997 reproduction)")
    print()
    table = Table(
        "Demo: 8-destination multicast on a 64-host BMIN [cycles]",
        ["scheme", "last arrival", "mean arrival"],
    )
    cases = [
        ("central buffer + hardware worms",
         SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.HARDWARE),
        ("input buffers  + hardware worms",
         SwitchArchitecture.INPUT_BUFFER, MulticastScheme.HARDWARE),
        ("central buffer + software binomial",
         SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.SOFTWARE),
    ]
    for label, architecture, scheme in cases:
        result = run_simulation(
            SimulationConfig(
                num_hosts=64, switch_architecture=architecture, seed=1
            ),
            SingleMulticast(
                source=0, degree=8, payload_flits=64, scheme=scheme
            ),
        )
        (operation,) = result.collector.completed_operations()
        table.add_row(
            label, operation.last_latency,
            round(operation.average_latency, 1),
        )
    table.write()
    print()
    print("Full evaluation:   python -m repro.experiments.runner --all")
    print("Benchmarks:        pytest benchmarks/ --benchmark-only")
    print("Examples:          python examples/quickstart.py")
    return 0


if __name__ == "__main__":
    sys.exit(main())
