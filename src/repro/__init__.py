"""repro: multidestination worms in switch-based parallel systems.

A flit-level simulator and analysis library reproducing Stunkel, Sivaram
and Panda, *Implementing Multidestination Worms in Switch-Based Parallel
Systems: Architectural Alternatives and their Impact* (ISCA 1997).

Quickstart
----------
>>> from repro import (
...     SimulationConfig, SwitchArchitecture, MulticastScheme,
...     MultipleMulticastBurst, run_simulation,
... )
>>> cfg = SimulationConfig(num_hosts=16)
>>> workload = MultipleMulticastBurst(
...     num_multicasts=2, degree=4, payload_flits=32,
...     scheme=MulticastScheme.HARDWARE,
... )
>>> result = run_simulation(cfg, workload)
>>> result.op_last_latency.count
2
"""

from repro._version import __version__
from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.flits.encoding import BitStringEncoding, MultiportEncoding
from repro.flits.packet import Message, Packet, TrafficClass
from repro.network.builder import Network, build_network
from repro.network.config import EncodingKind, SimulationConfig, TopologyKind
from repro.network.simulation import (
    SimulationResult,
    run_simulation,
    run_workload,
)
from repro.routing.base import MulticastRoutingMode, UpPortPolicy
from repro.traffic.base import Workload
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.multicast import (
    MultipleMulticastBurst,
    RandomMulticastStream,
    SingleMulticast,
)
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.trace import TraceRecord, TraceWorkload
from repro.traffic.unicast import PermutationTraffic, UniformRandomUnicast

__all__ = [
    "BimodalTraffic",
    "BitStringEncoding",
    "DestinationSet",
    "EncodingKind",
    "HotspotTraffic",
    "Message",
    "MulticastRoutingMode",
    "MulticastScheme",
    "MultipleMulticastBurst",
    "MultiportEncoding",
    "Network",
    "Packet",
    "PermutationTraffic",
    "RandomMulticastStream",
    "SimulationConfig",
    "SimulationResult",
    "SingleMulticast",
    "SwitchArchitecture",
    "TopologyKind",
    "TraceRecord",
    "TraceWorkload",
    "TrafficClass",
    "UniformRandomUnicast",
    "UpPortPolicy",
    "Workload",
    "__version__",
    "build_network",
    "run_simulation",
    "run_workload",
]
