"""Packed-data-plane variant of the host network interface.

Same injection/ejection engine as
:class:`~repro.host.interface.HostInterface`, but moving spans instead
of flit objects: injection stages up to ``min(credits, remaining)``
flits of the head worm in one :meth:`~repro.switches.link.Link.send_span`
call (wire-identical to the same flits sent one per cycle), and ejection
drains :meth:`~repro.switches.link.Link.receive_span` spans, returning
the freed credits in one batch.  No :class:`~repro.flits.flit.Flit`
object is ever constructed here (enforced by reprolint rule REP008).

Staging a whole span up front means the head worm leaves the injection
queue *at the staging cycle* rather than at the tail's nominal send
cycle.  Everything that observes injection state —
:meth:`HostNode.idle`, :meth:`Network.quiescent`, the
``ni.injection_backlog`` telemetry gauge — must still see the object
path's timeline, so :attr:`_tx_end` records the staged span's last
nominal send slot and :meth:`idle` / :attr:`injection_backlog` count the
worm as busy through that cycle.  Events and ``run_until`` predicates
run before ticks, so the object path's pop (inside the tick at the
tail-send cycle ``t_end``) becomes visible to them at ``t_end + 1`` —
exactly when ``now > _tx_end`` first holds.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.flits.packed import flit_repr
from repro.flits.worm import Worm
from repro.host.interface import HostInterface
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.sim.trace import NULL_TRACER, Tracer


class PackedHostInterface(HostInterface):
    """One host's injection/ejection engine on the packed data plane."""

    def __init__(
        self,
        host_id: int,
        tracer: Tracer = NULL_TRACER,
        rx_depth: int = HostInterface.RX_DEPTH,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(
            host_id, tracer=tracer, rx_depth=rx_depth, metrics=metrics
        )
        #: last nominal send-slot cycle of the most recently staged span
        self._tx_end = -1

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._eject_spans(now)
        sent = self._inject_span(now)
        # the staged span occupies send slots now .. now+sent-1, so the
        # next send opportunity is now+sent — wake there unconditionally:
        # a worm enqueued mid-span must start at exactly the cycle the
        # one-flit-per-tick reference would reach it (when the queue
        # stays empty the extra tick is a no-op and changes nothing)
        if sent:
            self.wake_at(now + sent)
        elif self._obs and self._inject:
            # blocked with telemetry on: poll every cycle so
            # ni.blocked_cycles counts densely — but only cycles past the
            # staged span's last nominal send slot are *blocked*; during
            # the span the one-flit-per-cycle reference is still sending
            if now > self._tx_end:
                self._c_blocked.inc()
            self.wake_at(now + 1)

    def _eject_spans(self, now: int) -> None:
        link = self.in_link
        if link is None or not link.pending_arrival(now):
            return
        while True:
            span = link.receive_span(now)
            if span is None:
                break
            worm, start, count = span
            link.return_credit(now, count)
            self._absorb_span(worm, start, count, now)

    def _absorb_span(self, worm: Worm, start: int, count: int, now: int) -> None:
        if self._rx_worm is None:
            if start != 0:
                raise ProtocolError(
                    f"{self.name}: body flit {flit_repr(worm, start)} "
                    "without head"
                )
            if not worm.destinations.is_singleton() or (
                self.host_id not in worm.destinations
            ):
                raise ProtocolError(
                    f"{self.name}: received worm addressed to "
                    f"{worm.destinations!r}"
                )
            self._rx_worm = worm
            self._rx_count = 0
        if worm is not self._rx_worm or start != self._rx_count:
            raise ProtocolError(
                f"{self.name}: out-of-order flit {flit_repr(worm, start)} "
                f"(expected index {self._rx_count})"
            )
        self._rx_count = start + count
        self.flits_ejected += count
        if self._obs:
            self._c_ejected.inc(count)
        self.sim.progress += count  # note_progress(), once per member flit
        if self._rx_count == worm.size_flits:
            self._rx_worm = None
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "packet_delivered",
                    packet=worm.packet.packet_id,
                )
            if self._on_delivery is not None:
                self._on_delivery(worm, now)

    def _inject_span(self, now: int) -> int:
        """Stage the next span out; returns the flits staged (0: blocked)."""
        link = self.out_link
        if link is None or not self._inject:
            return 0
        window = link.sendable_span(now)
        if window <= 0:
            return 0
        worm = self._inject[0]
        cursor = self._inject_cursor
        count = worm.size_flits - cursor
        if count > window:
            count = window
        if cursor == 0 and worm.packet.injected_cycle is None:
            worm.packet.injected_cycle = now
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "inject_start",
                    packet=worm.packet.packet_id,
                    flits=worm.size_flits,
                    created=worm.packet.message.created_cycle,
                )
        link.send_span(now, worm, cursor, count)
        cursor += count
        self.flits_injected += count
        if self._obs:
            self._c_injected.inc(count)
        self.sim.progress += count  # note_progress(), once per member flit
        self._tx_end = now + count - 1
        if cursor == worm.size_flits:
            self._inject.popleft()
            self._inject_cursor = 0
        else:
            self._inject_cursor = cursor
        return count

    # ------------------------------------------------------------------
    # introspection: the object path's timeline (see module docstring)
    # ------------------------------------------------------------------
    @property
    def injection_backlog(self) -> int:
        """Worms queued or with send slots still nominally occupied."""
        backlog = len(self._inject)
        if self._sim is not None and self._sim.now <= self._tx_end and (
            self._inject_cursor == 0
        ):
            backlog += 1
        return backlog

    def idle(self) -> bool:
        """True when nothing is being injected, staged, or reassembled."""
        return (
            not self._inject
            and self._rx_worm is None
            and (self._sim is None or self._sim.now > self._tx_end)
        )
