"""Software (unicast-based) multicast: the binomial U-MIN baseline.

The paper compares its hardware designs against the binomial-tree
software multicast of Xu, Gui and Ni (ref [38]), whose destination
ordering eliminates link contention among the unicasts of one multicast
on a MIN.  We reproduce that scheme: destinations are sorted by host id —
on the k-ary n-tree, id order is subtree order, so each recursive halving
splits along subtree boundaries and the simultaneous unicasts of a phase
use disjoint links — and the sorted list is folded into a binomial tree:
in each round every informed host sends to the first member of the upper
half of its remaining list, taking ``ceil(log2(d + 1))`` phases for *d*
destinations.

Each hop is an ordinary unicast message (traffic class
``SW_MULTICAST``), pays the host's software send overhead, and each
forwarding host additionally pays a receive overhead before its first
forward — the start-up costs that make software multicast slow on real
machines (refs [7, 11, 35]).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

from repro.flits.destset import DestinationSet
from repro.flits.packet import TrafficClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.host.node import HostNode
    from repro.metrics.collectors import Operation


def binomial_schedule(
    source: int, destinations: Sequence[int]
) -> Dict[int, List[int]]:
    """Forwarding children of every participant, in send order.

    The returned map gives, for the source and each destination, the list
    of hosts it must forward the message to, first send first.  The tree
    is the standard binomial fold over ``[source] + sorted(destinations)``:
    the current holder repeatedly peels off the upper half of its list and
    delegates it to that half's first member.

    >>> binomial_schedule(0, [1, 2, 3, 4, 5, 6, 7])
    {0: [4, 2, 1], 4: [6, 5], 2: [3], 6: [7]}
    """
    members = [source] + sorted(destinations)
    children: Dict[int, List[int]] = {}

    def fold(group: List[int]) -> None:
        # group[0] already holds the message and owns delivering to the rest
        while len(group) > 1:
            mid = (len(group) + 1) // 2
            upper = group[mid:]
            children.setdefault(group[0], []).append(upper[0])
            fold(upper)
            group = group[:mid]

    fold(members)
    return children


class SoftwareMulticastEngine:
    """Drives the forwarding of software multicast operations.

    One engine is shared by all hosts of a network.  When a multicast is
    posted with the software scheme, the engine computes the binomial
    schedule once, lets the source send its first-round unicasts, and —
    as copies arrive — triggers each forwarding host's sends after that
    host's receive overhead.
    """

    def __init__(self) -> None:
        self._children_by_op: Dict[int, Dict[int, List[int]]] = {}
        self._tag_by_op: Dict[int, object] = {}

    def start(
        self, node: "HostNode", operation: "Operation", tag: object = None
    ) -> None:
        """Begin a software multicast at its source node."""
        schedule = binomial_schedule(
            operation.source, list(operation.destinations)
        )
        self._children_by_op[operation.op_id] = schedule
        if tag is not None:
            self._tag_by_op[operation.op_id] = tag
        self._forward(node, operation.op_id, operation.payload_flits,
                      receive_overhead=0)

    def on_delivery(
        self, node: "HostNode", op_id: int, payload_flits: int
    ) -> None:
        """A host received its copy; forward to its subtree, if any."""
        self._forward(node, op_id, payload_flits,
                      receive_overhead=node.params.sw_recv_overhead)

    def _forward(
        self,
        node: "HostNode",
        op_id: int,
        payload_flits: int,
        receive_overhead: int,
    ) -> None:
        schedule = self._children_by_op.get(op_id)
        if schedule is None:
            return
        children = schedule.get(node.host_id, [])
        if not children:
            self._maybe_forget(op_id, node)
            return
        ready = node.sim.now + receive_overhead
        tag = self._tag_by_op.get(op_id)
        for child in children:
            node.post_message(
                destinations=DestinationSet.single(node.universe, child),
                payload_flits=payload_flits,
                traffic_class=TrafficClass.SW_MULTICAST,
                op_id=op_id,
                not_before=ready,
                tag=tag,
            )
        self._maybe_forget(op_id, node)

    def _maybe_forget(self, op_id: int, node: "HostNode") -> None:
        """Drop the schedule once the operation has fully completed."""
        operation = node.collector.operation(op_id)
        if operation is not None and operation.completed_cycle is not None:
            self._children_by_op.pop(op_id, None)
            self._tag_by_op.pop(op_id, None)

    def pending_operations(self) -> int:
        """Schedules still retained (unfinished operations)."""
        return len(self._children_by_op)
