"""Host network interface: flit-level injection and ejection.

The NI injects queued worms one flit per cycle (subject to link credits)
and sinks arriving flits at full rate, handing completed packets to the
host node.  Its receive buffer is modelled as ample: ejected flits free
their credit immediately, so the network is never back-pressured by a
host that is merely receiving — matching the paper's assumption that
reception bandwidth at the destination NI is not the bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import ProtocolError
from repro.flits.flit import Flit
from repro.flits.worm import Worm
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.sim.component import Component
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.link import Link

DeliveryCallback = Callable[[Worm, int], None]


class HostInterface(Component):
    """One host's injection/ejection engine.

    ``rx_depth`` is the receive-FIFO depth advertised to the switch as
    credits.  Credits are returned as flits are consumed, so the depth
    matters only relative to the credit round-trip time: on long links a
    shallow FIFO throttles ejection (see
    ``tests/switches/test_central_buffer.py::TestPipelineTiming``).
    """

    #: default receive-FIFO depth
    RX_DEPTH = 4

    def __init__(
        self,
        host_id: int,
        tracer: Tracer = NULL_TRACER,
        rx_depth: int = RX_DEPTH,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(f"ni{host_id}")
        if rx_depth < 1:
            raise ProtocolError("rx_depth must be at least 1")
        self.host_id = host_id
        self.rx_depth = rx_depth
        self.tracer = tracer
        # network-wide NI totals, shared by name across all interfaces;
        # guarded by the captured flag so the uninstrumented path pays a
        # single boolean test (the REP005 contract)
        self._obs = metrics.enabled
        self._c_injected = metrics.counter("ni.flits_injected")
        self._c_ejected = metrics.counter("ni.flits_ejected")
        self._c_blocked = metrics.counter("ni.blocked_cycles")
        self.out_link: Optional[Link] = None
        self.in_link: Optional[Link] = None
        self._inject: Deque[Worm] = deque()
        self._inject_cursor = 0
        #: reused drain buffer — the per-cycle eject loop is allocation-free
        self._rx_scratch: List[Flit] = []
        self._rx_worm: Optional[Worm] = None
        self._rx_count = 0
        self._on_delivery: Optional[DeliveryCallback] = None
        #: flits ever injected / ejected (statistics)
        self.flits_injected = 0
        self.flits_ejected = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect_out(self, link: Link) -> None:
        """Wire the injection link toward the switch and register this NI
        as its credit waker (a maturing credit schedules a tick)."""
        if self.out_link is not None:
            raise ProtocolError(f"{self.name}: out link already wired")
        self.out_link = link
        link.wake_on_credit(self)

    def connect_in(self, link: Link) -> None:
        """Wire the ejection link from the switch and declare our depth.

        Also registers this NI as the link's arrival waker, so ejection
        needs no polling: the NI ticks exactly on cycles a flit arrives.
        """
        if self.in_link is not None:
            raise ProtocolError(f"{self.name}: in link already wired")
        self.in_link = link
        link.set_credits(self.rx_depth)
        link.wake_on_arrival(self)

    def on_delivery(self, callback: DeliveryCallback) -> None:
        """Register the node's packet-delivery handler."""
        self._on_delivery = callback

    # ------------------------------------------------------------------
    # node-facing API
    # ------------------------------------------------------------------
    def enqueue(self, worm: Worm) -> None:
        """Queue a root worm for injection (FIFO).

        Wakes the NI for the current cycle: enqueues happen from host
        calendar events, which the kernel runs before ticks, so injection
        starts this very cycle — exactly as under the dense kernel.
        """
        self._inject.append(worm)
        self.wake_now()

    @property
    def injection_backlog(self) -> int:
        """Worms queued or partially injected."""
        return len(self._inject)

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._eject(now)
        sent = self._inject_one(now)
        # active-set re-arm: keep ticking while flits are flowing out.  A
        # credit-blocked NI sleeps instead — the out-link's credit hook
        # wakes it exactly when the next credit matures.  Ejection is
        # purely arrival-driven — the in-link's arrival hook wakes us per
        # flit — so a half-reassembled worm alone needs no polling.
        if self._inject and sent:
            self.wake_at(now + 1)
        elif self._obs and self._inject:
            # blocked with telemetry on: poll so blocked_cycles counts
            # every stalled cycle, exactly as under the dense kernel (the
            # extra ticks are behaviourally inert — sending still gates
            # on can_send, which flips on the same cycle the credit hook
            # would have woken us)
            self._c_blocked.inc()
            self.wake_at(now + 1)

    def _eject(self, now: int) -> None:
        link = self.in_link
        if link is None or not link.pending_arrival(now):
            return
        scratch = self._rx_scratch
        del scratch[:]
        link.receive_into(now, scratch)
        for flit in scratch:
            link.return_credit(now)
            self._absorb(flit, now)

    def _absorb(self, flit: Flit, now: int) -> None:
        if self._rx_worm is None:
            if not flit.is_head:
                raise ProtocolError(
                    f"{self.name}: body flit {flit!r} without head"
                )
            worm = flit.worm
            if not worm.destinations.is_singleton() or (
                self.host_id not in worm.destinations
            ):
                raise ProtocolError(
                    f"{self.name}: received worm addressed to "
                    f"{worm.destinations!r}"
                )
            self._rx_worm = worm
            self._rx_count = 0
        if flit.worm is not self._rx_worm or flit.index != self._rx_count:
            raise ProtocolError(
                f"{self.name}: out-of-order flit {flit!r} "
                f"(expected index {self._rx_count})"
            )
        self._rx_count += 1
        self.flits_ejected += 1
        if self._obs:
            self._c_ejected.inc()
        self.sim.note_progress()
        if flit.is_tail:
            worm = self._rx_worm
            self._rx_worm = None
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "packet_delivered",
                    packet=worm.packet.packet_id,
                )
            if self._on_delivery is not None:
                self._on_delivery(worm, now)

    def _inject_one(self, now: int) -> bool:
        """Push the next flit out; True when one was sent."""
        if self.out_link is None or not self._inject:
            return False
        worm = self._inject[0]
        if not self.out_link.can_send(now):
            return False
        if self._inject_cursor == 0 and worm.packet.injected_cycle is None:
            worm.packet.injected_cycle = now
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "inject_start",
                    packet=worm.packet.packet_id,
                    flits=worm.size_flits,
                    created=worm.packet.message.created_cycle,
                )
        self.out_link.send(now, Flit(worm, self._inject_cursor))
        self._inject_cursor += 1
        self.flits_injected += 1
        if self._obs:
            self._c_injected.inc()
        self.sim.note_progress()
        if self._inject_cursor == worm.size_flits:
            self._inject.popleft()
            self._inject_cursor = 0
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when nothing is being injected or reassembled."""
        return not self._inject and self._rx_worm is None
