"""Host nodes: the message-passing endpoint above the NI.

A node owns the send-side software model of the paper's evaluation: every
packet send occupies the host CPU for a start-up overhead (serialized per
host), and software-multicast forwards additionally pay a receive
overhead.  Workloads talk to nodes, nodes talk to their NI, and the NI
talks flits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError
from repro.flits.destset import DestinationSet
from repro.flits.encoding import HeaderEncoding
from repro.flits.packet import Message, TrafficClass
from repro.flits.worm import Worm
from repro.host.interface import HostInterface
from repro.host.software_multicast import SoftwareMulticastEngine
from repro.metrics.collectors import MetricsCollector, Operation
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.sim.kernel import Simulator

#: bucket upper edges (cycles) of the delivery-latency histogram
LATENCY_BUCKETS = (50, 100, 200, 400, 800, 1600, 3200, 6400)


@dataclass
class HostParams:
    """Host software model parameters.

    The defaults follow the paper's era: communication start-up dominates
    (refs [7, 11, 35]), so software overheads are tens of network cycles.
    """

    #: CPU cycles per packet send before the NI sees it
    sw_send_overhead: int = 40
    #: CPU cycles between a delivery and the first software forward
    sw_recv_overhead: int = 40
    #: largest packet payload; longer messages are segmented
    max_packet_payload_flits: int = 128

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range parameters."""
        if self.sw_send_overhead < 0 or self.sw_recv_overhead < 0:
            raise ConfigurationError("software overheads must be >= 0")
        if self.max_packet_payload_flits < 1:
            raise ConfigurationError("max_packet_payload_flits must be >= 1")


class HostNode:
    """One host's message API and CPU model."""

    def __init__(
        self,
        host_id: int,
        universe: int,
        sim: Simulator,
        interface: HostInterface,
        encoding: HeaderEncoding,
        collector: MetricsCollector,
        params: HostParams,
        sw_engine: SoftwareMulticastEngine,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        params.validate()
        self.host_id = host_id
        self.universe = universe
        self.sim = sim
        self.interface = interface
        self.encoding = encoding
        self.collector = collector
        self.params = params
        self.sw_engine = sw_engine
        self._cpu_ready = 0
        self._delivery_listeners = []
        # observability: shared process-wide counters (no-ops unless an
        # enabled registry was passed in)
        self._obs = metrics.enabled
        self._c_injected = metrics.counter("host.messages_injected")
        self._c_delivered = metrics.counter("host.messages_delivered")
        self._h_latency = metrics.histogram(
            "host.delivery_latency_cycles", LATENCY_BUCKETS
        )
        interface.on_delivery(self._on_packet_delivered)

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def post_message(
        self,
        destinations: DestinationSet,
        payload_flits: int,
        traffic_class: TrafficClass,
        op_id: Optional[int] = None,
        not_before: Optional[int] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Ask this host to send one message.

        Latency is measured from *now* (the workload's request), so host
        CPU serialization and injection queueing count toward it, as in
        the paper.  ``not_before`` defers the CPU work (used for receive
        overheads of software multicast forwards).
        """
        now = self.sim.now
        message = Message(
            message_id=self.collector.new_message_id(),
            source=self.host_id,
            destinations=destinations,
            payload_flits=payload_flits,
            traffic_class=traffic_class,
            created_cycle=now,
            op_id=op_id,
            tag=tag,
        )
        expected_packets = math.ceil(
            payload_flits / self.params.max_packet_payload_flits
        )
        self.collector.register_message(message, expected_packets)
        if self._obs:
            self._c_injected.inc()
        start = max(not_before if not_before is not None else now,
                    self._cpu_ready, now)
        self._cpu_ready = start + self.params.sw_send_overhead * expected_packets
        # Calendar events for the current cycle have already run by the
        # time a component tick calls us, so the NI hand-off lands no
        # earlier than next cycle (enqueueing costs the host a cycle).
        inject_at = max(self._cpu_ready, now + 1)
        self.sim.schedule_at(inject_at, lambda: self._inject(message))
        return message

    def _inject(self, message: Message) -> None:
        first_packet_id = self.collector.new_packet_id()
        packets = message.segment(
            self.encoding,
            self.params.max_packet_payload_flits,
            first_packet_id,
        )
        # keep the collector's counter in step with the ids we consumed
        for _ in range(len(packets) - 1):
            self.collector.new_packet_id()
        for packet in packets:
            self.interface.enqueue(Worm.root(packet))

    def post_multicast(
        self,
        destinations: DestinationSet,
        payload_flits: int,
        scheme: MulticastScheme,
        tag: Optional[object] = None,
    ) -> Operation:
        """Start a multicast operation from this host.

        With the hardware scheme the destination set is split into as many
        worms as the header encoding needs (one for bit-string; one per
        product set for multiport).  With the software scheme the binomial
        engine drives unicast forwards.
        """
        if self.host_id in destinations:
            destinations = destinations.without(self.host_id)
        if not destinations:
            raise ConfigurationError(
                "multicast needs at least one destination besides the source"
            )
        operation = self.collector.register_operation(
            source=self.host_id,
            destinations=destinations,
            payload_flits=payload_flits,
            scheme=scheme.value,
            created_cycle=self.sim.now,
        )
        if scheme is MulticastScheme.HARDWARE:
            for phase_destinations in self.encoding.phases(destinations):
                self.post_message(
                    destinations=phase_destinations,
                    payload_flits=payload_flits,
                    traffic_class=TrafficClass.MULTICAST,
                    op_id=operation.op_id,
                    tag=tag,
                )
        else:
            self.sw_engine.start(self, operation, tag=tag)
        return operation

    def post_unicast(
        self, destination: int, payload_flits: int
    ) -> Message:
        """Send one background unicast message."""
        return self.post_message(
            destinations=DestinationSet.single(self.universe, destination),
            payload_flits=payload_flits,
            traffic_class=TrafficClass.UNICAST,
        )

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def add_delivery_listener(self, listener) -> None:
        """Call ``listener(node, message, now)`` on every message fully
        delivered at this host (collective engines hook in here)."""
        self._delivery_listeners.append(listener)

    def _on_packet_delivered(self, worm: Worm, now: int) -> None:
        packet = worm.packet
        message_done = self.collector.packet_delivered(packet, self.host_id, now)
        if not message_done:
            return
        if self._obs:
            self._c_delivered.inc()
            self._h_latency.observe(now - packet.message.created_cycle)
        if (
            packet.traffic_class is TrafficClass.SW_MULTICAST
            and packet.message.op_id is not None
        ):
            self.sw_engine.on_delivery(
                self, packet.message.op_id, packet.message.payload_flits
            )
        for listener in self._delivery_listeners:
            listener(self, packet.message, now)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def cpu_busy_until(self) -> int:
        """Cycle at which the host CPU becomes free."""
        return self._cpu_ready

    def idle(self) -> bool:
        """True when the CPU is free and the NI has nothing queued."""
        return self._cpu_ready <= self.sim.now and self.interface.idle()

    def __repr__(self) -> str:
        return f"HostNode({self.host_id})"


def allocate_nodes(
    sim: Simulator,
    interfaces: List[HostInterface],
    encoding: HeaderEncoding,
    collector: MetricsCollector,
    params: HostParams,
    metrics: MetricsRegistry = NULL_REGISTRY,
) -> List[HostNode]:
    """Build one node per interface, sharing a software multicast engine."""
    engine = SoftwareMulticastEngine()
    universe = len(interfaces)
    return [
        HostNode(
            host_id=interface.host_id,
            universe=universe,
            sim=sim,
            interface=interface,
            encoding=encoding,
            collector=collector,
            params=params,
            sw_engine=engine,
            metrics=metrics,
        )
        for interface in interfaces
    ]
