"""Hosts: network interfaces, nodes, and the software multicast engine."""

from repro.host.interface import HostInterface
from repro.host.node import HostNode, HostParams
from repro.host.software_multicast import SoftwareMulticastEngine, binomial_schedule

__all__ = [
    "HostInterface",
    "HostNode",
    "HostParams",
    "SoftwareMulticastEngine",
    "binomial_schedule",
]
