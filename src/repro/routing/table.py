"""Per-switch routing tables built on reachability registers.

The paper's switches decode a bit-string header by ANDing it with an
N-bit *reachability register* per output port.  A
:class:`SwitchRoutingTable` holds exactly those registers: a destination
mask per down-port (disjoint across ports, covering the switch's subtree)
plus the list of up-ports, any one of which reaches every host outside
the subtree.  :meth:`compute_requests` is the decode step — one ``&`` per
port — and produces the branch set for replication.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import RoutingError
from repro.flits.destset import DestinationSet
from repro.flits.worm import Worm
from repro.routing.base import (
    MulticastRoutingMode,
    PortRequest,
    UpSelector,
    validate_partition,
)


class SwitchRoutingTable:
    """Reachability registers and decode logic for one switch.

    Parameters
    ----------
    switch_id:
        Flat switch id within the topology.
    num_hosts:
        System size N (the reachability register width).
    down_reach:
        ``port -> destination mask`` for every down-direction port
        (including ports attached directly to hosts).  Masks must be
        pairwise disjoint.
    up_ports:
        Ports through which every host outside the subtree is reachable.
        Empty for top-level and unidirectional-MIN switches.
    host_ports:
        ``port -> host id`` for ports wired straight to a host NI.
    """

    def __init__(
        self,
        switch_id: int,
        num_hosts: int,
        down_reach: Dict[int, int],
        up_ports: Sequence[int],
        host_ports: Optional[Dict[int, int]] = None,
    ) -> None:
        self.switch_id = switch_id
        self.num_hosts = num_hosts
        self.down_reach = dict(down_reach)
        self.up_ports = list(up_ports)
        self.host_ports = dict(host_ports or {})
        union = 0
        for port, mask in self.down_reach.items():
            if mask == 0:
                raise RoutingError(
                    f"switch {switch_id} port {port} has empty reachability"
                )
            if union & mask:
                raise RoutingError(
                    f"switch {switch_id} down-port reachability overlaps"
                )
            union |= mask
        self.subtree_mask = union
        for port, host in self.host_ports.items():
            if self.down_reach.get(port) != 1 << host:
                raise RoutingError(
                    f"switch {switch_id} host port {port} must reach "
                    f"exactly host {host}"
                )

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def compute_requests(
        self,
        worm: Worm,
        mode: MulticastRoutingMode,
        up_selector: UpSelector,
        self_check: bool = False,
    ) -> List[PortRequest]:
        """Decode a worm's header into output-port branch requests.

        A descending worm (one that has turned at its LCA) may use only
        down-ports; an ascending worm goes up while any destination lies
        outside this switch's subtree, with the split between the up and
        down branches governed by ``mode``.
        """
        destinations = worm.destinations
        inside = destinations.intersect_mask(self.subtree_mask)
        outside = destinations - inside

        requests: List[PortRequest] = []
        if worm.descending:
            if outside:
                raise RoutingError(
                    f"descending worm at switch {self.switch_id} carries "
                    f"destinations outside its subtree: {outside!r}"
                )
            self._append_down_requests(inside, requests)
        elif not outside:
            # The worm reached (or started at) its LCA: turn around.
            self._append_down_requests(inside, requests)
        elif mode is MulticastRoutingMode.TURNAROUND:
            port = self._select_up(up_selector, worm, destinations)
            requests.append(PortRequest(port, destinations, descending=False))
        else:  # BRANCH_ON_UP
            port = self._select_up(up_selector, worm, outside)
            requests.append(PortRequest(port, outside, descending=False))
            if inside:
                self._append_down_requests(inside, requests)

        if self_check:
            validate_partition(destinations, requests)
        return requests

    def _append_down_requests(
        self, targets: DestinationSet, requests: List[PortRequest]
    ) -> None:
        for port, mask in self.down_reach.items():
            branch = targets.intersect_mask(mask)
            if branch:
                requests.append(PortRequest(port, branch, descending=True))

    def _select_up(
        self, up_selector: UpSelector, worm: Worm, carried: DestinationSet
    ) -> int:
        if not self.up_ports:
            raise RoutingError(
                f"switch {self.switch_id} has no up-port but worm "
                f"{worm!r} must ascend for {carried!r}"
            )
        return up_selector(self.up_ports, worm)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def is_host_port(self, port: int) -> bool:
        """True when ``port`` is wired straight to a host NI."""
        return port in self.host_ports

    def delivers_to(self, port: int) -> Optional[int]:
        """Host id delivered by ``port``, or ``None``."""
        return self.host_ports.get(port)

    def down_ports(self) -> List[int]:
        """Down-direction ports in ascending order."""
        return sorted(self.down_reach)

    def __repr__(self) -> str:
        return (
            f"SwitchRoutingTable(switch={self.switch_id}, "
            f"down={sorted(self.down_reach)}, up={self.up_ports}, "
            f"hosts={sorted(self.host_ports.values())})"
        )
