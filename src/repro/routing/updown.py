"""Tree-based (up*/down*-style) routing tables for irregular networks.

Deadlock-free routing on an irregular switch network is classically
obtained by superimposing a tree (Autonet's up*/down*, ref [30]); the
paper notes its multidestination schemes carry over to such networks by
routing worms on the tree.  These tables route all traffic on the
spanning-tree links recorded by
:class:`~repro.topology.irregular.IrregularNetwork`: each switch's
down-ports are its host and tree-child ports, and its single up-port
leads to its tree parent.
"""

from __future__ import annotations

from typing import Dict, List

from repro.routing.table import SwitchRoutingTable
from repro.topology.irregular import IrregularNetwork


def tables_for_irregular(network: IrregularNetwork) -> List[SwitchRoutingTable]:
    """Per-switch routing tables following the network's spanning tree."""
    subtree_mask: Dict[int, int] = {}

    def mask_for(switch: int) -> int:
        cached = subtree_mask.get(switch)
        if cached is not None:
            return cached
        mask = 0
        for host, _port in network.host_ports[switch]:
            mask |= 1 << host
        for child, _port in network.child_ports[switch]:
            mask |= mask_for(child)
        subtree_mask[switch] = mask
        return mask

    tables: List[SwitchRoutingTable] = []
    for switch in range(network.num_switches):
        down_reach: Dict[int, int] = {}
        host_ports: Dict[int, int] = {}
        for host, port in network.host_ports[switch]:
            down_reach[port] = 1 << host
            host_ports[port] = host
        for child, port in network.child_ports[switch]:
            down_reach[port] = mask_for(child)
        parent_port = network.parent_port[switch]
        up_ports = [] if parent_port is None else [parent_port]
        tables.append(
            SwitchRoutingTable(
                switch_id=switch,
                num_hosts=network.num_hosts,
                down_reach=down_reach,
                up_ports=up_ports,
                host_ports=host_ports,
            )
        )
    return tables
