"""Routing: reachability decode and multidestination port-request logic."""

from repro.routing.base import (
    MulticastRoutingMode,
    PortRequest,
    UpPortPolicy,
    make_up_selector,
)
from repro.routing.table import SwitchRoutingTable
from repro.routing.reachability import (
    tables_for_bmin,
    tables_for_umin,
)
from repro.routing.updown import tables_for_irregular

__all__ = [
    "MulticastRoutingMode",
    "PortRequest",
    "SwitchRoutingTable",
    "UpPortPolicy",
    "make_up_selector",
    "tables_for_bmin",
    "tables_for_irregular",
    "tables_for_umin",
]
