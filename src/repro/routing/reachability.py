"""Reachability-register construction for regular MINs.

The registers are computed bottom-up from the topology itself, mimicking
how a real system would program the switches at boot: a level-0 down-port
reaches exactly its attached host, and a higher switch's down-port
reaches the whole subtree of the child switch it is cabled to.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import RoutingError
from repro.routing.table import SwitchRoutingTable
from repro.topology.bmin import BidirectionalMin
from repro.topology.graph import NodeKind
from repro.topology.umin import UnidirectionalMin


def tables_for_bmin(bmin: BidirectionalMin) -> List[SwitchRoutingTable]:
    """Per-switch routing tables for a bidirectional MIN, by switch id."""
    topo = bmin.topology
    subtree: Dict[int, int] = {}
    tables: List[SwitchRoutingTable] = (
        [None] * bmin.num_switches  # type: ignore[list-item]
    )
    for level in range(bmin.levels):
        for index in range(bmin.switches_per_level):
            switch = bmin.switch_id(level, index)
            down_reach: Dict[int, int] = {}
            host_ports: Dict[int, int] = {}
            peers = topo.switch_port_peers(switch)
            for port in bmin.down_ports(switch):
                peer = peers[port]
                if peer is None:
                    raise RoutingError(
                        f"switch {switch} down port {port} is unwired"
                    )
                if peer.kind == NodeKind.HOST:
                    down_reach[port] = 1 << peer.node
                    host_ports[port] = peer.node
                else:
                    down_reach[port] = subtree[peer.node]
            table = SwitchRoutingTable(
                switch_id=switch,
                num_hosts=bmin.num_hosts,
                down_reach=down_reach,
                up_ports=list(bmin.up_ports(switch)),
                host_ports=host_ports,
            )
            tables[switch] = table
            subtree[switch] = table.subtree_mask
    return tables


def tables_for_umin(umin: UnidirectionalMin) -> List[SwitchRoutingTable]:
    """Per-switch routing tables for a unidirectional MIN, by switch id.

    Every port is a forward port (``down_reach``); there are no up-ports,
    so worms never ascend and the decode degenerates to the pure
    destination-split the butterfly supports.
    """
    topo = umin.topology
    all_reach: Dict[int, int] = {}
    tables: List[SwitchRoutingTable] = (
        [None] * umin.num_switches  # type: ignore[list-item]
    )
    for stage in reversed(range(umin.stages)):
        for index in range(umin.switches_per_stage):
            switch = umin.switch_id(stage, index)
            down_reach: Dict[int, int] = {}
            host_ports: Dict[int, int] = {}
            peers = topo.switch_port_peers(switch)
            for port in umin.output_ports(switch):
                peer = peers[port]
                if peer is None:
                    raise RoutingError(
                        f"switch {switch} output port {port} is unwired"
                    )
                if peer.kind == NodeKind.HOST:
                    down_reach[port] = 1 << peer.node
                    host_ports[port] = peer.node
                else:
                    down_reach[port] = all_reach[peer.node]
            table = SwitchRoutingTable(
                switch_id=switch,
                num_hosts=umin.num_hosts,
                down_reach=down_reach,
                up_ports=[],
                host_ports=host_ports,
            )
            tables[switch] = table
            all_reach[switch] = table.subtree_mask
    return tables
