"""Routing primitives shared by every switch architecture.

The paper separates three concerns that this module keeps separate too:

* *where* a worm may travel (up toward the LCA, then down — encoded in
  :class:`MulticastRoutingMode`),
* *which* output ports a worm requests at a switch (computed by
  :class:`~repro.routing.table.SwitchRoutingTable` from per-port
  reachability registers), and
* *how* the switch picks among equivalent up-ports
  (:class:`UpPortPolicy`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional, Sequence

from repro.flits.destset import DestinationSet
from repro.flits.worm import Worm


class MulticastRoutingMode(enum.Enum):
    """How a multidestination worm covers a bidirectional MIN (paper §3).

    TURNAROUND
        Travel up to the LCA stage of source and destinations without
        replicating, then cover all destinations by replicating on the
        way down (the scheme of ref [27]).
    BRANCH_ON_UP
        Replicate downward to already-reachable destinations while still
        ascending; the up-going branch carries only the destinations
        outside the current subtree.
    """

    TURNAROUND = "turnaround"
    BRANCH_ON_UP = "branch_on_up"


class UpPortPolicy(enum.Enum):
    """How a switch picks one of its equivalent up-ports."""

    #: hash of (source, lowest destination): stable per flow
    DETERMINISTIC = "deterministic"
    #: uniformly random per worm, from the switch's RNG stream
    RANDOM = "random"
    #: the up-port with the most send credits at request time
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class PortRequest:
    """One output port a worm asks for, with the branch's rewritten header.

    ``descending`` records whether the branch is past its turn toward the
    leaves; downstream switches use it to forbid re-ascending.
    """

    port: int
    destinations: DestinationSet
    descending: bool


UpSelector = Callable[[Sequence[int], Worm], int]
"""Picks one up-port for a worm from a non-empty candidate list."""


def make_up_selector(
    policy: UpPortPolicy,
    rng: Optional[Random] = None,
    credit_view: Optional[Callable[[int], int]] = None,
) -> UpSelector:
    """Build an up-port selector implementing ``policy``.

    Parameters
    ----------
    policy:
        Selection policy.
    rng:
        Required for :attr:`UpPortPolicy.RANDOM`.
    credit_view:
        ``port -> available send credits``; required for
        :attr:`UpPortPolicy.ADAPTIVE`.
    """
    if policy is UpPortPolicy.DETERMINISTIC:

        def deterministic(candidates: Sequence[int], worm: Worm) -> int:
            key = worm.source * 1_000_003 + worm.destinations.lowest()
            return candidates[key % len(candidates)]

        return deterministic

    if policy is UpPortPolicy.RANDOM:
        if rng is None:
            raise ValueError("RANDOM up-port policy needs an rng")

        def random_choice(candidates: Sequence[int], worm: Worm) -> int:
            return candidates[rng.randrange(len(candidates))]

        return random_choice

    if policy is UpPortPolicy.ADAPTIVE:
        if credit_view is None:
            raise ValueError("ADAPTIVE up-port policy needs a credit view")

        def adaptive(candidates: Sequence[int], worm: Worm) -> int:
            return max(candidates, key=lambda port: (credit_view(port), -port))

        return adaptive

    raise ValueError(f"unknown up-port policy {policy!r}")


def validate_partition(
    incoming: DestinationSet, requests: List[PortRequest]
) -> None:
    """Assert the paper's replication invariant.

    The rewritten headers of a worm's branches must be pairwise disjoint
    and union to exactly the incoming destination set — otherwise some
    host would receive duplicates or nothing.  Raises ``ValueError`` on
    violation; switches call this under their self-check flag.
    """
    union = 0
    for request in requests:
        if not request.destinations:
            raise ValueError(f"empty branch on port {request.port}")
        if union & request.destinations.mask:
            raise ValueError("branch destination sets overlap")
        union |= request.destinations.mask
    if union != incoming.mask:
        raise ValueError(
            f"branches cover {union:#x}, expected {incoming.mask:#x}"
        )
