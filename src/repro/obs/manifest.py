"""Run manifests: the provenance record written beside every run.

A manifest answers "what exactly produced this output?" months later:
the package version, python and platform, the git commit, wall-time and
peak memory of the producing process, plus free-form ``extras`` (the
experiment list, CLI flags, per-run config hashes).  Benchmarks embed
one in their ``BENCH_*.json`` output and the experiment runner writes
one beside ``--metrics-out``/``--trace-out`` files.
"""

from __future__ import annotations

import calendar
import hashlib
import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.obs.sinks import SCHEMA_MANIFEST


def utc_now_iso() -> str:
    """The current UTC time as an ISO-8601 string.

    The observability layer is the only place allowed to read the wall
    clock (reprolint REP002); code that needs a timestamp — the result
    store's journal headers, gc age cutoffs — calls this instead of
    :mod:`time` directly.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def parse_iso(stamp: str) -> Optional[float]:
    """Seconds-since-epoch of an ISO stamp from :func:`utc_now_iso`.

    Returns ``None`` for stamps in any other shape, so callers degrade
    to "age unknown" rather than crash on foreign manifests.
    """
    try:
        parts = time.strptime(stamp, "%Y-%m-%dT%H:%M:%SZ")
    except ValueError:
        return None
    return float(calendar.timegm(parts))


def git_sha() -> str:
    """The repository HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` if unknown."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return int(peak)
    return int(peak) * 1024  # kilobytes on Linux


def config_sha256(fingerprint: str) -> str:
    """Stable short hash of a config fingerprint string.

    Pair with :func:`repro.network.config.describe`, which includes
    every behaviour-affecting field of a :class:`SimulationConfig`.
    """
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to attribute and reproduce one run."""

    created_at: str
    package_version: str
    python_version: str
    platform: str
    git_sha: str
    wall_seconds: Optional[float] = None
    peak_rss_bytes: Optional[int] = None
    jobs: Optional[int] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA_MANIFEST

    @classmethod
    def collect(
        cls,
        wall_seconds: Optional[float] = None,
        jobs: Optional[int] = None,
        **extras: Any,
    ) -> "RunManifest":
        """Capture the current process's provenance."""
        return cls(
            created_at=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            package_version=__version__,
            python_version=platform.python_version(),
            platform=platform.platform(),
            git_sha=git_sha(),
            wall_seconds=wall_seconds,
            peak_rss_bytes=peak_rss_bytes(),
            jobs=jobs,
            extras=dict(extras),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-friendly mapping (schema tag first for humans)."""
        return {
            "schema": self.schema,
            "created_at": self.created_at,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "git_sha": self.git_sha,
            "wall_seconds": self.wall_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
            "jobs": self.jobs,
            "extras": self.extras,
        }

    def write(self, path: str) -> None:
        """Write this manifest as an indented JSON file."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema") != SCHEMA_MANIFEST:
            raise ValueError(
                f"{path}: not a {SCHEMA_MANIFEST} manifest "
                f"(schema={data.get('schema')!r})"
            )
        return cls(
            created_at=data["created_at"],
            package_version=data["package_version"],
            python_version=data["python_version"],
            platform=data["platform"],
            git_sha=data["git_sha"],
            wall_seconds=data.get("wall_seconds"),
            peak_rss_bytes=data.get("peak_rss_bytes"),
            jobs=data.get("jobs"),
            extras=data.get("extras", {}),
        )
