"""Named metric instruments: counters, gauges and fixed-bucket histograms.

Components register instruments against a :class:`MetricsRegistry` *by
name*; registering the same counter name twice returns the same object,
so e.g. every switch in a network can fold into one shared
``switch.flits_forwarded`` total without coordination.

The registry follows the same opt-in contract as
:class:`repro.sim.trace.Tracer`: instrumentation is **off by default**.
A disabled registry (``NULL_REGISTRY``) hands out shared no-op
instruments and records nothing, and hot paths additionally guard their
increments behind a single boolean (``metrics.enabled``) captured at
construction time, so the uninstrumented simulation pays nothing per
flit.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (``n`` >= 0)."""
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time reading, evaluated through a callback.

    The callback runs only when the gauge is read (by a sampler or a
    snapshot), never on the simulation hot path.  Callbacks may be
    stateful — windowed rates keep their previous reading in a closure.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> float:
        """Evaluate the gauge now."""
        return float(self.fn())

    def __repr__(self) -> str:
        return f"Gauge({self.name!r})"


class BucketHistogram:
    """A fixed-bucket histogram with cumulative-style explicit bounds.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; one implicit overflow bucket catches
    everything above the last bound.  Bucket layout is fixed at
    registration, so observation is O(log buckets) and memory is
    constant regardless of sample count.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def snapshot(self) -> Dict[str, object]:
        """Bucket layout and counts as plain JSON-friendly data."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return f"BucketHistogram({self.name!r}, count={self.count})"


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullHistogram:
    """Shared no-op histogram handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    count = 0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"bounds": [], "counts": [], "count": 0, "total": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Parameters
    ----------
    enabled:
        When false, every factory method returns a shared no-op
        instrument and nothing is recorded.  Components capture this
        flag once (``self._obs = metrics.enabled``) and guard their hot
        paths with it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, BucketHistogram] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register the callback-backed gauge ``name`` (unique)."""
        if not self.enabled:
            return Gauge(name, fn)  # inert: never stored, never sampled
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float]
    ) -> BucketHistogram:
        """The histogram named ``name``, created with ``bounds`` on
        first use; later registrations must agree on the bounds."""
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = BucketHistogram(name, bounds)
        elif histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return histogram

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, Counter]:
        """Registered counters by name (read-only by convention)."""
        return self._counters

    @property
    def gauges(self) -> Dict[str, Gauge]:
        """Registered gauges by name (read-only by convention)."""
        return self._gauges

    @property
    def histograms(self) -> Dict[str, BucketHistogram]:
        """Registered histograms by name (read-only by convention)."""
        return self._histograms

    def sample_gauges(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """Evaluate ``names`` (default: every gauge) right now."""
        selected = self._gauges if names is None else {
            name: self._gauges[name] for name in names
        }
        return {name: gauge.read() for name, gauge in sorted(selected.items())}

    def snapshot(self) -> Dict[str, object]:
        """Every instrument's current value as JSON-friendly data."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": self.sample_gauges(),
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


NULL_REGISTRY = MetricsRegistry(enabled=False)
"""Shared disabled registry for components created without one."""
