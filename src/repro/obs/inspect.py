"""``python -m repro inspect``: summarise manifests and JSONL files.

Reads any mix of run manifests (``*.manifest.json``), metrics JSONL,
trace JSONL, profiling-digest JSONL and ``BENCH_*.json`` benchmark
artifacts and prints a human-readable summary: per-run gauge
statistics, an ASCII chart of central-buffer occupancy over time (via
:mod:`repro.metrics.ascii_chart`), trace event counts, kernel/phase
profiling sections with a link-utilisation heatmap, worm lifecycle
digests, manifest provenance, and — for benchmark artifacts — the
result-store section (hits, coalesced runs, bytes, segment count)
recorded when the run memoized through ``REPRO_STORE_DIR``.  With
``--check`` it validates every line against the schemas in
:mod:`repro.obs.sinks` and exits non-zero on any invalid record — the
CI smoke job runs exactly that.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.ascii_chart import render_chart
from repro.metrics.report import Table
from repro.obs.manifest import RunManifest
from repro.obs.sinks import (
    SCHEMA_LIFECYCLE,
    SCHEMA_MANIFEST,
    SCHEMA_METRICS,
    SCHEMA_PROFILE,
    SCHEMA_RUN,
    SCHEMA_TRACE,
    iter_jsonl,
    validate_file,
)

#: gauge charted over time when present in a metrics file
CHART_GAUGE = "cb.occupancy_chunks"


def _is_manifest_file(path: str) -> bool:
    """True when the file is one JSON object tagged as a manifest."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(data, dict) and data.get("schema") == SCHEMA_MANIFEST


def _load_bench_file(path: str) -> Optional[Dict[str, Any]]:
    """The parsed ``BENCH_*.json`` artifact, or ``None`` if not one.

    Recognises both shapes: the kernel benchmark artifact (tagged
    ``repro.bench.kernel/1``) and the per-experiment archives written
    by ``benchmarks/_benchlib`` (``experiment`` + ``rows`` keys).
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    if str(data.get("schema", "")).startswith("repro.bench."):
        return data
    if "experiment" in data and "rows" in data:
        return data
    return None


def _summarise_bench(path: str, data: Dict[str, Any]) -> str:
    """Render a benchmark artifact: headline, rows, store section."""
    lines = [f"{path}: benchmark artifact"]
    if data.get("experiment"):
        title = data.get("title") or ""
        lines.append(
            f"  experiment {data['experiment']}"
            + (f": {title}" if title else "")
        )
    rows = data.get("rows") or data.get("scenarios") or []
    if isinstance(rows, list):
        lines.append(f"  {len(rows)} row(s)")
    manifest = data.get("manifest")
    if isinstance(manifest, dict):
        lines.append(
            f"  recorded {manifest.get('created_at', '?')} at git "
            f"{str(manifest.get('git_sha', '?'))[:12]}"
        )
    store = data.get("store")
    if isinstance(store, dict):
        table = Table("result store", ["field", "value"])
        for key in (
            "hits", "coalesced", "executed", "saved_seconds",
            "warm_hits", "warm_ratio", "dedup_speedup",
            "entries", "segments", "bytes",
        ):
            if key in store:
                table.add_row(key.replace("_", " "), store[key])
        lines.append(
            "\n".join("  " + row for row in table.render().split("\n"))
        )
    else:
        lines.append("  no store section (ran without a result store)")
    return "\n".join(lines)


def _summarise_manifest(path: str) -> str:
    manifest = RunManifest.load(path)
    lines = [f"{path}: run manifest ({manifest.schema})"]
    table = Table("provenance", ["field", "value"])
    table.add_row("created at", manifest.created_at)
    table.add_row("package", manifest.package_version)
    table.add_row("python", manifest.python_version)
    table.add_row("platform", manifest.platform)
    table.add_row("git SHA", manifest.git_sha)
    if manifest.wall_seconds is not None:
        table.add_row("wall seconds", round(manifest.wall_seconds, 3))
    if manifest.peak_rss_bytes is not None:
        table.add_row(
            "peak RSS", f"{manifest.peak_rss_bytes / 2**20:.1f} MiB"
        )
    if manifest.jobs is not None:
        table.add_row("jobs", manifest.jobs)
    for key, value in sorted(manifest.extras.items()):
        table.add_row(key, _compact(value))
    lines.append(table.render())
    return "\n".join(lines)


def _compact(value: Any, limit: int = 60) -> str:
    text = json.dumps(value, default=repr) if not isinstance(
        value, str
    ) else value
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _summarise_jsonl(path: str, chart: bool) -> str:
    runs: Dict[str, Dict[str, Any]] = {}
    trace_counts: Dict[str, int] = {}
    profiles: Dict[str, Dict[str, Any]] = {}
    lifecycles: List[Dict[str, Any]] = []
    trace_lines = 0
    bad_lines = 0
    for _, obj in iter_jsonl(path):
        if isinstance(obj, Exception) or not isinstance(obj, dict):
            bad_lines += 1
            continue
        schema = obj.get("schema")
        if schema == SCHEMA_RUN:
            entry = runs.setdefault(
                str(obj.get("run")), {"points": [], "meta": {}}
            )
            if obj.get("event") == "start":
                entry["meta"]["config"] = obj.get("config", "")
                entry["meta"]["seed"] = obj.get("seed")
            else:
                entry["meta"]["cycles"] = obj.get("cycles")
                entry["meta"]["wall_seconds"] = obj.get("wall_seconds")
                entry["meta"]["counters"] = obj.get("counters", {})
        elif schema == SCHEMA_METRICS:
            entry = runs.setdefault(
                str(obj.get("run")), {"points": [], "meta": {}}
            )
            entry["points"].append((obj.get("cycle", 0), obj.get("values", {})))
        elif schema == SCHEMA_TRACE:
            trace_lines += 1
            event = str(obj.get("event"))
            trace_counts[event] = trace_counts.get(event, 0) + 1
        elif schema == SCHEMA_PROFILE:
            sections = profiles.setdefault(str(obj.get("run")), {})
            sections[str(obj.get("section"))] = obj.get("data", {})
        elif schema == SCHEMA_LIFECYCLE:
            lifecycles.append(obj)
        else:
            bad_lines += 1

    lines = [f"{path}:"]
    if runs:
        lines.append(
            f"  {len(runs)} run(s), "
            f"{sum(len(r['points']) for r in runs.values())} metric sample(s)"
        )
        for run_id, entry in sorted(runs.items()):
            lines.append(_summarise_run(run_id, entry, chart))
    if trace_lines:
        table = Table(
            f"trace events ({trace_lines} records)", ["event", "count"]
        )
        for event, count in sorted(
            trace_counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            table.add_row(event, count)
        lines.append(table.render())
    for run_id, sections in sorted(profiles.items()):
        lines.append(_summarise_profile(run_id, sections))
    if lifecycles:
        lines.append(_summarise_lifecycles(lifecycles))
    if bad_lines:
        lines.append(f"  WARNING: {bad_lines} unrecognised line(s)")
    if not runs and not trace_lines and not profiles and not lifecycles:
        lines.append("  no recognised records")
    return "\n".join(lines)


def _summarise_profile(run_id: str, sections: Dict[str, Any]) -> str:
    """Render one run's profiling sections (kernel, phases, heatmap)."""
    from repro.obs.profile.heatmap import render_heatmap

    lines = [f"  profile run {run_id}:"]
    run_info = sections.get("run", {})
    if run_info:
        bits = [
            f"{key}={run_info[key]}"
            for key in ("arch", "scenario", "cycles")
            if run_info.get(key) not in (None, "")
        ]
        if bits:
            lines.append("    " + ", ".join(bits))
    kernel = sections.get("kernel")
    if kernel:
        lines.append(
            f"    kernel: {kernel.get('steps', 0)} stepped cycles, "
            f"{kernel.get('cycles_skipped', 0)} fast-forwarded in "
            f"{kernel.get('fast_forwards', 0)} jumps"
        )
        table = Table("ticks by component class", ["class", "ticks"])
        for name, ticks in kernel.get("ticks_by_class", {}).items():
            table.add_row(name, ticks)
        lines.append(
            "\n".join("    " + row for row in table.render().split("\n"))
        )
    phases = sections.get("phases")
    if phases:
        table = Table(
            f"worm phases ({phases.get('packets', 0)} worms, "
            f"{phases.get('incomplete', 0)} in flight)",
            ["phase", "worms", "mean cycles"],
        )
        for name in ("setup", "blocked", "transfer"):
            cell = phases.get(name) or {}
            table.add_row(name, cell.get("count", 0), cell.get("mean", 0))
        lines.append(
            "\n".join("    " + row for row in table.render().split("\n"))
        )
    heatmap = sections.get("heatmap")
    if heatmap:
        rendered = render_heatmap(heatmap)
        lines.append(
            "\n".join("    " + row for row in rendered.split("\n"))
        )
    return "\n".join(lines)


def _summarise_lifecycles(records: List[Dict[str, Any]]) -> str:
    """One aggregate line plus the slowest worms."""
    complete = [r for r in records if isinstance(r.get("total"), int)]
    lines = [
        f"  {len(records)} worm lifecycle(s), {len(complete)} complete"
    ]
    slowest = sorted(
        complete, key=lambda r: r.get("total", 0), reverse=True
    )[:5]
    if slowest:
        table = Table(
            "slowest worms",
            ["packet", "setup", "blocked", "transfer", "total", "hops"],
        )
        for record in slowest:
            table.add_row(
                record.get("packet"),
                record.get("setup"),
                record.get("blocked"),
                record.get("transfer"),
                record.get("total"),
                record.get("hop_count"),
            )
        lines.append(
            "\n".join("  " + row for row in table.render().split("\n"))
        )
    return "\n".join(lines)


def _summarise_run(run_id: str, entry: Dict[str, Any], chart: bool) -> str:
    meta = entry["meta"]
    points: List[Tuple[int, Dict[str, float]]] = sorted(entry["points"])
    lines: List[str] = []
    header = f"run {run_id}"
    if meta.get("seed") is not None:
        header += f" (seed={meta['seed']})"
    if meta.get("cycles") is not None:
        header += f", {meta['cycles']} cycles"
    if meta.get("wall_seconds") is not None:
        header += f", {meta['wall_seconds']}s wall"
    lines.append(header)
    if meta.get("config"):
        lines.append(f"  {meta['config']}")
    if points:
        gauges: Dict[str, List[float]] = {}
        for _, values in points:
            for name, value in values.items():
                gauges.setdefault(name, []).append(float(value))
        table = Table(
            f"sampled gauges over cycles "
            f"{points[0][0]}..{points[-1][0]} ({len(points)} samples)",
            ["gauge", "min", "mean", "max", "last"],
        )
        for name, values in sorted(gauges.items()):
            table.add_row(
                name,
                round(min(values), 3),
                round(sum(values) / len(values), 3),
                round(max(values), 3),
                round(values[-1], 3),
            )
        lines.append(table.render())
        series = [
            (float(cycle), float(values[CHART_GAUGE]))
            for cycle, values in points
            if CHART_GAUGE in values
        ]
        if chart and len(series) >= 2 and any(y for _, y in series):
            lines.append(
                render_chart(
                    {run_id: series},
                    title=f"{CHART_GAUGE} over time",
                    x_label="cycle",
                    y_label="chunks",
                )
            )
    counters = meta.get("counters") or {}
    if counters:
        table = Table("final counters", ["counter", "value"])
        for name, value in sorted(counters.items()):
            table.add_row(name, value)
        lines.append(table.render())
    return "\n".join("  " + line for block in lines for line in block.split("\n"))


def _check(paths: List[str]) -> int:
    """Validate every file; print a verdict per file; 0 iff all valid."""
    failures = 0
    for path in paths:
        bench = _load_bench_file(path)
        if bench is not None:
            manifest = bench.get("manifest")
            if isinstance(manifest, dict) and manifest.get(
                "schema"
            ) not in (None, SCHEMA_MANIFEST):
                print(f"{path}: INVALID bench artifact (bad manifest "
                      f"schema {manifest.get('schema')!r})")
                failures += 1
            else:
                print(f"{path}: OK (bench artifact)")
            continue
        if _is_manifest_file(path):
            try:
                RunManifest.load(path)
            except (ValueError, KeyError) as error:
                print(f"{path}: INVALID manifest ({error})")
                failures += 1
            else:
                print(f"{path}: OK (manifest)")
            continue
        valid, errors = validate_file(path)
        if errors:
            failures += 1
            print(f"{path}: INVALID ({valid} valid line(s))")
            for error in errors[:10]:
                print(f"  {error}")
            if len(errors) > 10:
                print(f"  ... and {len(errors) - 10} more")
        else:
            print(f"{path}: OK ({valid} line(s))")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro inspect``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro inspect",
        description="Summarise observability manifests and JSONL files.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="FILE",
        help="manifest .json, metrics .jsonl or trace .jsonl files",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate schemas only; exit 1 on any invalid record",
    )
    parser.add_argument(
        "--no-chart", action="store_true",
        help="skip the occupancy-over-time ASCII chart",
    )
    args = parser.parse_args(argv)

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"{path}: no such file", file=sys.stderr)
        return 2
    if args.check:
        return _check(args.paths)
    for path in args.paths:
        bench = _load_bench_file(path)
        if bench is not None:
            print(_summarise_bench(path, bench))
        elif _is_manifest_file(path):
            print(_summarise_manifest(path))
        else:
            print(_summarise_jsonl(path, chart=not args.no_chart))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
