"""The instrumented run path behind ``run_simulation``.

When :mod:`repro.obs.runtime` is configured, every simulation built
through :func:`repro.network.simulation.run_simulation` comes through
here instead of the plain build-and-run path: the network is built with
an enabled :class:`~repro.obs.registry.MetricsRegistry` (so switches and
hosts register their counters) and a streaming tracer, the standard
network gauges are registered, a :class:`~repro.obs.sampler.CycleSampler`
is attached, and the run is bracketed by ``repro.run/1`` start/end lines
carrying the config fingerprint and the final counter snapshot.

Instrumentation observes; it never steers.  The simulation result is
bit-identical to the uninstrumented path (enforced by
``tests/obs/test_zero_overhead.py``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.network.builder import build_network
from repro.network.config import SimulationConfig, describe
from repro.obs import runtime
from repro.obs.manifest import config_sha256
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import CycleSampler, register_network_gauges
from repro.obs.sinks import JsonlTracer, MetricsSink
from repro.traffic.base import Workload

if TYPE_CHECKING:  # circular at runtime: simulation.py imports us lazily
    from repro.network.simulation import SimulationResult


def run_instrumented(
    config: SimulationConfig,
    workload: Workload,
    max_cycles: Optional[int],
    options: runtime.ObsOptions,
) -> "SimulationResult":
    """Build, instrument, run and record one simulation."""
    # lazy import: simulation.py imports us lazily for the same reason
    from repro.network.simulation import run_workload

    run_id = runtime.next_run_id()
    fingerprint = describe(config)
    registry = MetricsRegistry(enabled=True)

    tracer = None
    if options.trace_out:
        tracer = JsonlTracer(options.trace_out, run=run_id)
    sink = None
    if options.metrics_out:
        sink = MetricsSink(options.metrics_out)

    network = build_network(config, tracer=tracer, metrics=registry)
    register_network_gauges(network, registry)
    sampler = CycleSampler(
        registry,
        every=options.effective_sample_every,
        sink=sink,
        run=run_id,
    )
    network.sim.add_component(sampler)

    if sink is not None:
        sink.write_run_event(
            run_id,
            "start",
            config=fingerprint,
            config_sha256=config_sha256(fingerprint),
            seed=config.seed,
            workload=type(workload).__name__,
            sample_every=sampler.every,
        )
    started = time.perf_counter()
    try:
        result = run_workload(network, workload, max_cycles=max_cycles)
    finally:
        wall = time.perf_counter() - started
        if sink is not None:
            sink.write_run_event(
                run_id,
                "end",
                cycles=network.sim.now,
                wall_seconds=round(wall, 6),
                samples=len(sampler.series),
                **registry.snapshot(),
            )
            sink.close()
        if tracer is not None:
            tracer.close()
    return result
