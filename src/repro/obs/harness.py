"""The instrumented run path behind ``run_simulation``.

When :mod:`repro.obs.runtime` is configured, every simulation built
through :func:`repro.network.simulation.run_simulation` comes through
here instead of the plain build-and-run path: the network is built with
an enabled :class:`~repro.obs.registry.MetricsRegistry` (so switches and
hosts register their counters) and a streaming tracer, the standard
network gauges are registered, a :class:`~repro.obs.sampler.CycleSampler`
is attached, and the run is bracketed by ``repro.run/1`` start/end lines
carrying the config fingerprint and the final counter snapshot.

Instrumentation observes; it never steers.  The simulation result is
bit-identical to the uninstrumented path (enforced by
``tests/obs/test_zero_overhead.py``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.network.builder import build_network
from repro.network.config import SimulationConfig, describe
from repro.obs import runtime
from repro.obs.manifest import config_sha256
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import CycleSampler, register_network_gauges
from repro.obs.sinks import (
    SCHEMA_LIFECYCLE,
    SCHEMA_PROFILE,
    JsonlTracer,
    JsonlWriter,
    MetricsSink,
)
from repro.traffic.base import Workload

if TYPE_CHECKING:  # circular at runtime: simulation.py imports us lazily
    from repro.network.builder import Network
    from repro.network.simulation import SimulationResult
    from repro.obs.profile import (
        KernelProfiler,
        SpanProfiler,
        WormLifecycleTracer,
    )


def run_instrumented(
    config: SimulationConfig,
    workload: Workload,
    max_cycles: Optional[int],
    options: runtime.ObsOptions,
) -> "SimulationResult":
    """Build, instrument, run and record one simulation."""
    # lazy import: simulation.py imports us lazily for the same reason
    from repro.network.simulation import run_workload

    run_id = runtime.next_run_id()
    fingerprint = describe(config)
    registry = MetricsRegistry(enabled=True)

    stream_tracer = None
    if options.trace_out:
        stream_tracer = JsonlTracer(options.trace_out, run=run_id)

    lifecycle = None
    kernel_profiler = None
    span_profiler = None
    tracer = stream_tracer
    if options.profile_out:
        # profiling layers on top of (and chains to) the stream tracer
        from repro.obs.profile import (
            KernelProfiler,
            SpanProfiler,
            WormLifecycleTracer,
        )

        lifecycle = WormLifecycleTracer(inner=stream_tracer)
        kernel_profiler = KernelProfiler()
        span_profiler = SpanProfiler()
        tracer = lifecycle

    sink = None
    if options.metrics_out:
        sink = MetricsSink(options.metrics_out)

    network = build_network(config, tracer=tracer, metrics=registry)
    if kernel_profiler is not None and span_profiler is not None:
        network.sim.attach_profiler(kernel_profiler)
        # before the first tick: packed switches freeze per-port
        # receive bindings on first use
        span_profiler.attach_all(network.links)
    register_network_gauges(network, registry)
    sampler = CycleSampler(
        registry,
        every=options.effective_sample_every,
        sink=sink,
        run=run_id,
    )
    network.sim.add_component(sampler)

    if sink is not None:
        sink.write_run_event(
            run_id,
            "start",
            config=fingerprint,
            config_sha256=config_sha256(fingerprint),
            seed=config.seed,
            workload=type(workload).__name__,
            sample_every=sampler.every,
        )
    started = time.perf_counter()
    try:
        result = run_workload(network, workload, max_cycles=max_cycles)
    finally:
        wall = time.perf_counter() - started
        if sink is not None:
            sink.write_run_event(
                run_id,
                "end",
                cycles=network.sim.now,
                wall_seconds=round(wall, 6),
                samples=len(sampler.series),
                **registry.snapshot(),
            )
            sink.close()
        if (
            options.profile_out
            and lifecycle is not None
            and kernel_profiler is not None
            and span_profiler is not None
        ):
            _write_profile_digest(
                options.profile_out,
                run_id,
                fingerprint,
                network,
                lifecycle,
                kernel_profiler,
                span_profiler,
                registry,
            )
        if stream_tracer is not None:
            stream_tracer.close()
    return result


def _write_profile_digest(
    path: str,
    run_id: str,
    fingerprint: str,
    network: "Network",
    lifecycle: "WormLifecycleTracer",
    kernel_profiler: "KernelProfiler",
    span_profiler: "SpanProfiler",
    registry: MetricsRegistry,
) -> None:
    """Append one run's profiling sections and worm lifecycles."""
    from repro.obs.profile.heatmap import link_heatmap

    packets = lifecycle.finalise()
    cycles = network.sim.now
    arch = network.config.switch_architecture.value
    sections = {
        "run": {
            "arch": arch,
            "config": fingerprint,
            "cycles": cycles,
        },
        "kernel": kernel_profiler.snapshot(),
        "spans": span_profiler.snapshot(),
        "phases": lifecycle.phase_summary(),
        "heatmap": link_heatmap(network, cycles),
        "counters": {
            name: counter.value
            for name, counter in sorted(registry.counters.items())
        },
    }
    with JsonlWriter(path) as writer:
        for section, data in sections.items():
            writer.write(
                {
                    "schema": SCHEMA_PROFILE,
                    "run": run_id,
                    "arch": arch,
                    "section": section,
                    "data": data,
                }
            )
        for life in packets:
            record: Dict[str, Any] = {
                "schema": SCHEMA_LIFECYCLE,
                "run": run_id,
                "arch": arch,
            }
            record.update(life.snapshot())
            writer.write(record)
