"""Process-global observability options for experiment runs.

Experiment grids execute their simulations inside module-level worker
functions, often in forked pool processes, so instrumentation cannot be
threaded through every experiment signature.  Instead the CLI (or a
test) *configures* observability once in the parent process;
:func:`repro.network.simulation.run_simulation` consults
:func:`configured` and, when options are active, routes through the
instrumented harness.  Forked workers inherit the configuration (the
pool in :mod:`repro.experiments.parallel` uses the default ``fork``
start method on Linux); on platforms without fork the serial fallback
path still instruments every run.

Nothing is configured by default, so the ordinary
build-and-run path is untouched — same objects, same RNG draws, same
golden outputs.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

#: sampling period used when sampling is implied (e.g. ``--metrics-out``
#: without ``--sample-every``)
DEFAULT_SAMPLE_EVERY = 200


@dataclass(frozen=True)
class ObsOptions:
    """What to record and where."""

    #: JSONL file for run headers and sampled metrics (append mode)
    metrics_out: Optional[str] = None
    #: JSONL file for streamed trace events (append mode)
    trace_out: Optional[str] = None
    #: gauge sampling period in cycles; 0 means DEFAULT_SAMPLE_EVERY
    sample_every: int = 0
    #: JSONL file for profiling digests (``repro.profile/1`` sections
    #: plus ``repro.lifecycle/1`` worm records, append mode); also
    #: attaches the kernel/span profilers to every run
    profile_out: Optional[str] = None

    @property
    def effective_sample_every(self) -> int:
        """The sampling period actually used."""
        return self.sample_every if self.sample_every > 0 else (
            DEFAULT_SAMPLE_EVERY
        )


_configured: Optional[ObsOptions] = None
_run_sequence = itertools.count(1)


def configure(options: Optional[ObsOptions]) -> None:
    """Install (or, with ``None``, clear) the process-wide options."""
    global _configured
    _configured = options


def configured() -> Optional[ObsOptions]:
    """The active options, or ``None`` when observability is off."""
    return _configured


def reset() -> None:
    """Clear the configuration (tests and CLI teardown)."""
    configure(None)


def next_run_id() -> str:
    """A process-unique run tag for JSONL lines.

    Includes the PID so runs from different pool workers appending to
    one shared file never collide.
    """
    return f"{os.getpid()}-{next(_run_sequence)}"


@contextmanager
def enabled(**kwargs: object) -> Iterator[ObsOptions]:
    """Scoped configuration for tests::

        with runtime.enabled(metrics_out="m.jsonl", sample_every=50):
            run_simulation(config, workload)
    """
    options = ObsOptions(**kwargs)  # type: ignore[arg-type]
    previous = configured()
    configure(options)
    try:
        yield options
    finally:
        configure(previous)
