"""Streaming JSONL sinks for traces and sampled metrics.

Every emitted line is a self-describing JSON object carrying a
``schema`` tag, so one file can interleave run headers, metric samples
and trace events, and downstream tools (``python -m repro inspect``, the
CI smoke job) can validate files without out-of-band context:

``repro.run/1``
    Run lifecycle: an ``event: "start"`` line with the config
    fingerprint and seed, and an ``event: "end"`` line with cycles,
    wall-time and the final counter/histogram snapshot.
``repro.metrics/1``
    One sampled gauge snapshot: ``{"run", "cycle", "values"}``.
``repro.trace/1``
    One traced simulator event: ``{"run", "cycle", "source", "event",
    "details"}``.
``repro.manifest/1``
    A whole-file run manifest (see :mod:`repro.obs.manifest`).
``repro.profile/1``
    One named profiling section (``kernel``, ``spans``, ``phases``,
    ``heatmap``, ``counters`` or ``run``) from an instrumented run:
    ``{"run", "section", "data"}`` (see :mod:`repro.obs.profile`).
``repro.lifecycle/1``
    One digested worm lifecycle: ``{"run", "packet", "setup",
    "blocked", "transfer", ...}`` (see
    :mod:`repro.obs.profile.lifecycle`).
``repro.store.segment/1`` / ``repro.store.entry/1``
    Result-store journal lines: a per-writer-session segment header
    (store schema version, creation time, provenance manifest) and one
    content-addressed cached run value per entry (see
    :mod:`repro.store` and ``docs/result-store.md``).

Writers open their file in append mode and emit each record as a single
line-buffered write, so several worker processes of one experiment grid
can share a file; lines from different runs are distinguished by their
``run`` tag, never by position.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.trace import Tracer

SCHEMA_RUN = "repro.run/1"
SCHEMA_METRICS = "repro.metrics/1"
SCHEMA_TRACE = "repro.trace/1"
SCHEMA_MANIFEST = "repro.manifest/1"
SCHEMA_PROFILE = "repro.profile/1"
SCHEMA_LIFECYCLE = "repro.lifecycle/1"
SCHEMA_STORE_SEGMENT = "repro.store.segment/1"
SCHEMA_STORE_ENTRY = "repro.store.entry/1"

KNOWN_SCHEMAS = (
    SCHEMA_RUN,
    SCHEMA_METRICS,
    SCHEMA_TRACE,
    SCHEMA_MANIFEST,
    SCHEMA_PROFILE,
    SCHEMA_LIFECYCLE,
    SCHEMA_STORE_SEGMENT,
    SCHEMA_STORE_ENTRY,
)

#: section names a ``repro.profile/1`` record may carry
PROFILE_SECTIONS = (
    "run", "kernel", "spans", "phases", "heatmap", "counters"
)

#: required top-level fields per schema tag.  This is the single
#: registry both enforcement layers read: :func:`validate_record`
#: checks presence at read-back, and reprolint rule REP012 checks the
#: literal records at every write site statically (it evaluates this
#: mapping through the project index, so keep keys as the ``SCHEMA_*``
#: constants and values as tuples of string literals).
SCHEMA_FIELDS: Dict[str, Tuple[str, ...]] = {
    SCHEMA_RUN: ("run", "event"),
    SCHEMA_METRICS: ("run", "cycle", "values"),
    SCHEMA_TRACE: ("run", "cycle", "source", "event", "details"),
    SCHEMA_MANIFEST: ("python_version", "git_sha", "created_at"),
    SCHEMA_PROFILE: ("run", "section", "data"),
    SCHEMA_LIFECYCLE: ("run", "packet"),
    SCHEMA_STORE_SEGMENT: ("store_schema", "created_at"),
    SCHEMA_STORE_ENTRY: ("key", "fn", "result_version", "value"),
}


def _dumps(obj: Dict[str, Any]) -> str:
    """Canonical single-line JSON; non-JSON values fall back to repr."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=repr
    )


class JsonlWriter:
    """An append-mode, line-buffered JSONL file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "a", buffering=1, encoding="utf-8")
        self.lines_written = 0

    def write(self, obj: Dict[str, Any]) -> None:
        """Emit one record as one line."""
        self._file.write(_dumps(obj) + "\n")
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MetricsSink(JsonlWriter):
    """Writes run headers and sampled metric points."""

    def write_run_event(self, run: str, event: str, **fields: Any) -> None:
        """Emit a ``repro.run/1`` lifecycle line (``start``/``end``)."""
        self.write(
            {"schema": SCHEMA_RUN, "run": run, "event": event, **fields}
        )

    def write_point(
        self, run: str, cycle: int, values: Dict[str, float]
    ) -> None:
        """Emit one sampled gauge snapshot."""
        self.write(
            {
                "schema": SCHEMA_METRICS,
                "run": run,
                "cycle": cycle,
                "values": values,
            }
        )


class JsonlTracer(Tracer):
    """A :class:`~repro.sim.trace.Tracer` that streams to a JSONL file.

    Unlike the in-memory tracer this is not memory-bound: records go
    straight to disk and (by default) are **not** retained in the ring
    buffer.  Pass ``keep_records=True`` to also retain them for the
    in-process ``select``/``counts`` API, subject to ``limit``.
    """

    def __init__(
        self,
        path: str,
        run: str = "",
        keep_records: bool = False,
        limit: int = 1_000_000,
    ) -> None:
        super().__init__(enabled=True, limit=limit)
        self.run = run
        self.keep_records = keep_records
        self._writer = JsonlWriter(path)

    @property
    def lines_written(self) -> int:
        """Trace records streamed to disk so far."""
        return self._writer.lines_written

    def emit(self, cycle: int, source: str, event: str, **details: Any) -> None:
        """Stream one event; optionally also retain it in memory."""
        if not self.enabled:
            return
        self._writer.write(
            {
                "schema": SCHEMA_TRACE,
                "run": self.run,
                "cycle": cycle,
                "source": source,
                "event": event,
                "details": details,
            }
        )
        if self.keep_records:
            super().emit(cycle, source, event, **details)

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._writer.close()


# ----------------------------------------------------------------------
# reading and validation
# ----------------------------------------------------------------------
def iter_jsonl(path: str) -> Iterator[Tuple[int, Any]]:
    """Yield ``(line_number, parsed_object_or_exception)`` per line."""
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield number, json.loads(line)
            except json.JSONDecodeError as error:
                yield number, error


def validate_record(obj: Any) -> Optional[str]:
    """Return an error string for a malformed record, else ``None``."""
    if not isinstance(obj, dict):
        return "record is not a JSON object"
    schema = obj.get("schema")
    if schema not in KNOWN_SCHEMAS:
        return f"unknown schema {schema!r}"
    missing = [
        name for name in SCHEMA_FIELDS.get(schema, ()) if name not in obj
    ]
    if missing:
        return (
            f"record is missing required field(s) "
            f"{', '.join(missing)} for schema {schema!r}"
        )
    if schema == SCHEMA_METRICS:
        if not isinstance(obj.get("cycle"), int) or obj["cycle"] < 0:
            return "metrics point needs a non-negative integer 'cycle'"
        values = obj.get("values")
        if not isinstance(values, dict) or not all(
            isinstance(v, (int, float)) for v in values.values()
        ):
            return "metrics point needs a numeric 'values' mapping"
        if not isinstance(obj.get("run"), str):
            return "metrics point needs a string 'run' tag"
    elif schema == SCHEMA_TRACE:
        if not isinstance(obj.get("cycle"), int):
            return "trace record needs an integer 'cycle'"
        for key in ("source", "event"):
            if not isinstance(obj.get(key), str):
                return f"trace record needs a string {key!r}"
        if not isinstance(obj.get("details"), dict):
            return "trace record needs a 'details' object"
    elif schema == SCHEMA_RUN:
        if not isinstance(obj.get("run"), str):
            return "run record needs a string 'run' tag"
        if obj.get("event") not in ("start", "end"):
            return "run record 'event' must be 'start' or 'end'"
    elif schema == SCHEMA_MANIFEST:
        for key in ("python_version", "git_sha", "created_at"):
            if not isinstance(obj.get(key), str):
                return f"manifest needs a string {key!r}"
    elif schema == SCHEMA_PROFILE:
        if not isinstance(obj.get("run"), str):
            return "profile record needs a string 'run' tag"
        if obj.get("section") not in PROFILE_SECTIONS:
            return (
                "profile record 'section' must be one of "
                + ", ".join(PROFILE_SECTIONS)
            )
        if not isinstance(obj.get("data"), dict):
            return "profile record needs a 'data' object"
    elif schema == SCHEMA_STORE_SEGMENT:
        if not isinstance(obj.get("store_schema"), int):
            return "store segment header needs an integer 'store_schema'"
        if not isinstance(obj.get("created_at"), str):
            return "store segment header needs a string 'created_at'"
    elif schema == SCHEMA_STORE_ENTRY:
        if not isinstance(obj.get("key"), str) or not obj["key"]:
            return "store entry needs a non-empty string 'key'"
        if not isinstance(obj.get("fn"), str):
            return "store entry needs a string 'fn' reference"
        if not isinstance(obj.get("result_version"), int):
            return "store entry needs an integer 'result_version'"
    elif schema == SCHEMA_LIFECYCLE:
        if not isinstance(obj.get("run"), str):
            return "lifecycle record needs a string 'run' tag"
        if not isinstance(obj.get("packet"), int) or obj["packet"] < 0:
            return "lifecycle record needs a non-negative int 'packet'"
        for key in ("setup", "blocked", "transfer"):
            value = obj.get(key)
            if value is not None and (
                not isinstance(value, int) or value < 0
            ):
                return f"lifecycle {key!r} must be a non-negative int"
    return None


def validate_file(path: str) -> Tuple[int, List[str]]:
    """Validate every line of a JSONL file.

    Returns ``(valid_line_count, errors)`` where each error is a
    ``"line N: reason"`` string.
    """
    valid = 0
    errors: List[str] = []
    for number, obj in iter_jsonl(path):
        if isinstance(obj, Exception):
            errors.append(f"line {number}: invalid JSON ({obj})")
            continue
        problem = validate_record(obj)
        if problem is not None:
            errors.append(f"line {number}: {problem}")
        else:
            valid += 1
    return valid, errors
