"""Unified observability: metrics, sampling, sinks and manifests.

The layer has four pieces, all off by default:

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms registered by name; ``NULL_REGISTRY`` makes every
  instrumentation site free when observability is disabled.
* :mod:`repro.obs.sampler` — a simulation component snapshotting
  selected gauges every N cycles into a time series.
* :mod:`repro.obs.sinks` — schema-versioned JSONL writers for metrics
  and trace streams, plus validation helpers.
* :mod:`repro.obs.manifest` — the provenance record (git SHA, python,
  wall-time, peak RSS) written beside runs and benchmarks.

:mod:`repro.obs.runtime` holds the process-global switch the CLI flips;
:mod:`repro.obs.harness` (imported lazily — it depends on
:mod:`repro.network`) is the instrumented run path behind
``run_simulation``.  See ``docs/observability.md``.
"""

from repro.obs.registry import (
    BucketHistogram,
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.runtime import DEFAULT_SAMPLE_EVERY, ObsOptions
from repro.obs.sinks import (
    JsonlTracer,
    JsonlWriter,
    MetricsSink,
    iter_jsonl,
    validate_file,
    validate_record,
)
from repro.obs.manifest import RunManifest, config_sha256
from repro.obs.sampler import CycleSampler, register_network_gauges

__all__ = [
    "BucketHistogram",
    "Counter",
    "CycleSampler",
    "DEFAULT_SAMPLE_EVERY",
    "Gauge",
    "JsonlTracer",
    "JsonlWriter",
    "MetricsRegistry",
    "MetricsSink",
    "NULL_REGISTRY",
    "ObsOptions",
    "RunManifest",
    "config_sha256",
    "iter_jsonl",
    "register_network_gauges",
    "validate_file",
    "validate_record",
]
