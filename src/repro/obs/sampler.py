"""Cycle-driven gauge sampling: occupancy and utilisation over time.

The post-run probes in :mod:`repro.metrics.probe` answer "what was the
mean and peak?"; the :class:`CycleSampler` answers "when?".  Register it
with ``sim.add_component`` and every ``every`` cycles it evaluates the
selected gauges of a :class:`~repro.obs.registry.MetricsRegistry` into
an in-memory time series and (optionally) a streaming
:class:`~repro.obs.sinks.MetricsSink`.

The sampler rides the kernel's probe lane
(:meth:`~repro.sim.kernel.Simulator.add_probe`), not the wake calendar:
it never keeps the active-set kernel awake, so fast-forward jumps stay
uncapped, and sample points that land inside a skipped idle span are
*carried forward* — replayed by the kernel at the jump with ``now`` set
to each sample cycle, producing a time series bit-identical to the
dense kernel's (``tests/obs/test_sampler.py`` holds both properties).

Sampling is read-only — the sampler never touches RNG streams, never
notes progress and never schedules events, so attaching one cannot
change simulation behaviour (the zero-overhead regression test in
``tests/obs/test_zero_overhead.py`` enforces this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import MetricsSink
from repro.sim.component import Component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network
    from repro.sim.kernel import Simulator


class CycleSampler(Component):
    """Snapshots registry gauges every ``every`` cycles.

    Parameters
    ----------
    registry:
        The registry whose gauges are sampled.
    every:
        Sampling period in cycles (>= 1); cycle 0 is always sampled.
    sink:
        Optional streaming sink; each sample also becomes one
        ``repro.metrics/1`` JSONL line.
    gauges:
        Gauge names to sample; default is every registered gauge.
    run:
        Run tag stamped on streamed lines (see :mod:`repro.obs.sinks`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        every: int,
        sink: Optional[MetricsSink] = None,
        gauges: Optional[Sequence[str]] = None,
        run: str = "",
        name: str = "obs.sampler",
    ) -> None:
        super().__init__(name)
        if every < 1:
            raise ValueError("sampling period must be >= 1 cycle")
        self.registry = registry
        self.every = every
        self.sink = sink
        self.gauge_names = list(gauges) if gauges is not None else None
        self.run = run
        #: the collected time series, oldest first
        self.series: List[Tuple[int, Dict[str, float]]] = []
        #: next sample cycle — the kernel probe contract; aligned to the
        #: sampling grid (multiples of ``every``) at attach time
        self.next_cycle = 0

    def attach(self, sim: "Simulator") -> None:
        super().attach(sim)
        now = sim.now
        remainder = now % self.every
        self.next_cycle = now if not remainder else now + self.every - remainder
        sim.add_probe(self)

    def sample(self, cycle: int) -> None:
        """Kernel probe callback: snapshot the gauges at ``cycle``."""
        self.next_cycle = cycle + self.every
        values = self.registry.sample_gauges(self.gauge_names)
        self.series.append((cycle, values))
        if self.sink is not None:
            self.sink.write_point(self.run, cycle, values)

    def tick(self, now: int) -> None:
        # sampling happens on the kernel's probe lane (see `attach`); the
        # component registration only exists so `sim.add_component` keeps
        # working as the attachment point — the initial wake is a no-op
        pass


def register_network_gauges(
    network: "Network", registry: MetricsRegistry
) -> None:
    """Register the standard time-series gauges over a built network.

    ``cb.occupancy_chunks``
        Chunks currently held across every central-buffer switch
        (instantaneous, unlike the time-weighted post-run probe).
    ``link.utilisation``
        Mean flits-per-link-cycle since the previous reading — a
        windowed rate whose window is the sampling period.
    ``ni.injection_backlog``
        Worms queued or mid-injection across every host interface.
    """
    pools = [
        switch.pool
        for switch in network.switches
        if hasattr(switch, "pool")
    ]
    registry.gauge(
        "cb.occupancy_chunks",
        lambda: float(sum(pool.used_chunks for pool in pools)),
    )

    links = network.links
    sim = network.sim
    last = {"cycle": sim.now, "flits": sum(l.flits_sent for l in links)}

    def _link_utilisation() -> float:
        now = sim.now
        total = sum(link.flits_sent for link in links)
        elapsed = now - last["cycle"]
        delta = total - last["flits"]
        last["cycle"] = now
        last["flits"] = total
        if elapsed <= 0 or not links:
            return 0.0
        return delta / (elapsed * len(links))

    registry.gauge("link.utilisation", _link_utilisation)

    interfaces = network.interfaces
    registry.gauge(
        "ni.injection_backlog",
        lambda: float(sum(ni.injection_backlog for ni in interfaces)),
    )
