"""ASCII link-utilisation heatmaps per switch output port.

Utilisation comes from each link's always-on ``flits_sent`` counter
divided by the simulated cycle count, so the heatmap is free — no
instrumentation beyond what the data plane already maintains.  Hot
ports show as dense glyphs; a saturated hotspot destination stands out
as a column of ``@`` against a field of dots.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.network.builder import Network

#: glyph ramp from idle to saturated (indexing by utilisation decile)
SHADES = " .:-=+*#%@"


def _shade(utilisation: float) -> str:
    index = int(min(max(utilisation, 0.0), 1.0) * (len(SHADES) - 1))
    return SHADES[index]


def link_heatmap(network: Network, cycles: int) -> Dict[str, Any]:
    """Per-port utilisation for every switch (plus host injection links).

    Returns a JSON-ready dict: one entry per switch with a row of
    ``{"port", "link", "flits", "util"}`` cells, and one aggregate row
    for the host NIs' injection links.
    """
    span = max(cycles, 1)
    switches: List[Dict[str, Any]] = []
    for switch in network.switches:
        ports: List[Dict[str, Any]] = []
        for port, link in enumerate(switch.out_links):
            if link is None:
                continue
            ports.append(
                {
                    "port": port,
                    "link": link.name,
                    "flits": link.flits_sent,
                    "util": round(link.flits_sent / span, 4),
                }
            )
        switches.append({"name": switch.name, "ports": ports})
    hosts: List[Dict[str, Any]] = []
    for interface in network.interfaces:
        link = interface.out_link
        if link is None:
            continue
        hosts.append(
            {
                "host": interface.host_id,
                "link": link.name,
                "flits": link.flits_sent,
                "util": round(link.flits_sent / span, 4),
            }
        )
    return {"cycles": cycles, "switches": switches, "hosts": hosts}


def render_heatmap(heatmap: Dict[str, Any], width: int = 72) -> str:
    """Render :func:`link_heatmap` output as aligned ASCII rows.

    One row per switch, one glyph per output port; a final ``hosts``
    row shows NI injection links bucketed in topology order.  The
    legend maps glyphs back to utilisation deciles.
    """
    lines: List[str] = []
    switches = heatmap.get("switches", [])
    name_width = max(
        [len(s["name"]) for s in switches] + [len("hosts")], default=5
    )
    lines.append(
        f"link utilisation over {heatmap.get('cycles', 0)} cycles "
        f"(glyphs: '{SHADES}' = 0%..100%)"
    )
    for entry in switches:
        row = "".join(_shade(port["util"]) for port in entry["ports"])
        busiest = max(
            entry["ports"], key=lambda p: p["util"], default=None
        )
        note = ""
        if busiest is not None and busiest["util"] > 0:
            note = (
                f"  peak p{busiest['port']}"
                f" {busiest['util'] * 100:5.1f}%"
            )
        lines.append(f"{entry['name']:>{name_width}} |{row}|{note}")
    hosts = heatmap.get("hosts", [])
    if hosts:
        glyphs = "".join(_shade(host["util"]) for host in hosts)
        for offset in range(0, len(glyphs), width):
            label = "hosts" if offset == 0 else ""
            lines.append(
                f"{label:>{name_width}} |{glyphs[offset:offset + width]}|"
            )
    return "\n".join(lines)
