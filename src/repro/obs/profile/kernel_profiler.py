"""Kernel and span-level profiling instruments.

:class:`KernelProfiler` implements the kernel's
:class:`~repro.sim.kernel.ProfilerHook` protocol: attach one with
``sim.attach_profiler(profiler)`` and every stepped cycle is attributed
to the component classes that ticked, calendar events and wake backlog
are accumulated, and each fast-forwarded idle span lands in a size
histogram (the direct answer to "is the active-set kernel jumping or
crawling?").  All counting uses simulated cycles only — no wall clock —
so attaching a profiler can never perturb results.

:class:`SpanProfiler` observes the packed data plane from outside: it
wraps a :class:`~repro.switches.link.Link`'s span-movement entry points
(``send_span`` / ``send_packed`` / ``send_granted`` / ``receive_span``)
by *instance-attribute rebinding*, so an unprofiled link runs the
original bound methods with zero indirection.  Span-size histograms
answer the packed plane's key question: how many flits move per
span-queue operation (1 = the plane has degenerated to per-flit moves).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import BucketHistogram
from repro.sim.component import Component
from repro.switches.link import Link

#: bucket upper bounds for idle-span and span-size histograms (powers of
#: two; the registry adds an overflow bucket)
SPAN_BOUNDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: fast-forward jump records kept verbatim for trace export; beyond this
#: only the aggregate counters grow
MAX_JUMPS = 20_000


class KernelProfiler:
    """Attributes kernel activity to component classes and idle spans."""

    def __init__(self) -> None:
        #: ticks executed, keyed by component class name
        self.ticks_by_class: Dict[str, int] = {}
        #: cycles actually stepped (the rest were fast-forwarded)
        self.steps = 0
        #: calendar events fired
        self.events = 0
        #: sum over steps of (pending events + pending wakes)
        self.backlog_sum = 0
        #: largest backlog seen at any step
        self.backlog_peak = 0
        #: fast-forward jumps taken
        self.fast_forwards = 0
        #: total idle cycles skipped by those jumps
        self.cycles_skipped = 0
        #: idle-span size distribution
        self.idle_spans = BucketHistogram(
            "kernel.idle_span_cycles", SPAN_BOUNDS
        )
        #: first ``MAX_JUMPS`` jumps as ``(start_cycle, length)`` for the
        #: Chrome-trace exporter; ``jumps_dropped`` counts the overflow
        self.jumps: List[Tuple[int, int]] = []
        self.jumps_dropped = 0

    # -- ProfilerHook protocol -----------------------------------------
    def record_tick(self, component: Component) -> None:
        name = type(component).__name__
        ticks = self.ticks_by_class
        ticks[name] = ticks.get(name, 0) + 1

    def record_step(self, now: int, events: int, backlog: int) -> None:
        self.steps += 1
        self.events += events
        self.backlog_sum += backlog
        if backlog > self.backlog_peak:
            self.backlog_peak = backlog

    def record_fast_forward(self, start: int, skipped: int) -> None:
        self.fast_forwards += 1
        self.cycles_skipped += skipped
        self.idle_spans.observe(skipped)
        if len(self.jumps) < MAX_JUMPS:
            self.jumps.append((start, skipped))
        else:
            self.jumps_dropped += 1

    # -- reporting ------------------------------------------------------
    @property
    def total_ticks(self) -> int:
        return sum(self.ticks_by_class.values())

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready summary of everything recorded."""
        mean_backlog = self.backlog_sum / self.steps if self.steps else 0.0
        return {
            "steps": self.steps,
            "events": self.events,
            "ticks": self.total_ticks,
            "ticks_by_class": dict(
                sorted(
                    self.ticks_by_class.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ),
            "backlog_mean": round(mean_backlog, 2),
            "backlog_peak": self.backlog_peak,
            "fast_forwards": self.fast_forwards,
            "cycles_skipped": self.cycles_skipped,
            "idle_span_hist": self.idle_spans.snapshot(),
        }


class SpanProfiler:
    """Span-size histograms from a set of links, attached by rebinding.

    ``attach`` replaces the link's span entry points with thin wrappers
    holding the originals in closures.  Because ``Link`` resolves these
    calls through instance attributes (``Link.send`` dispatches via
    ``self.send_packed``; the packed switches cache
    ``link.receive_span`` bindings lazily at first tick), the wrappers
    intercept every data-plane movement — and a link that was never
    attached keeps its original bound methods, costing nothing.

    Attach before the first simulation tick: the packed central-buffer
    switch freezes its per-port receive bindings on first use.
    """

    def __init__(self) -> None:
        #: flits per transmit operation (send_span counts the whole
        #: span; per-flit sends land in the 1-bucket)
        self.tx_spans = BucketHistogram("link.tx_span_flits", SPAN_BOUNDS)
        #: flits per receive_span drain
        self.rx_spans = BucketHistogram("link.rx_span_flits", SPAN_BOUNDS)
        #: links currently wrapped
        self.links_attached = 0

    def attach(self, link: Link) -> None:
        """Wrap one link's span entry points (idempotent per link)."""
        if getattr(link, "_span_profiled", False):
            return
        orig_send_span = link.send_span
        orig_send_packed = link.send_packed
        orig_send_granted = link.send_granted
        orig_receive_span = link.receive_span
        tx = self.tx_spans
        rx = self.rx_spans

        def send_span(now: int, worm: Any, start: int, count: int) -> None:
            tx.observe(count)
            orig_send_span(now, worm, start, count)

        def send_packed(now: int, worm: Any, index: int) -> None:
            tx.observe(1)
            orig_send_packed(now, worm, index)

        def send_granted(now: int, worm: Any, index: int) -> None:
            tx.observe(1)
            orig_send_granted(now, worm, index)

        def receive_span(
            now: int, limit: Optional[int] = None
        ) -> Optional[Tuple[Any, int, int]]:
            span = orig_receive_span(now, limit)
            if span is not None:
                rx.observe(span[2])
            return span

        # instance-attribute rebinding (not monkeypatching the class):
        # only this link pays the wrapper, and only while profiled
        setattr(link, "send_span", send_span)
        setattr(link, "send_packed", send_packed)
        setattr(link, "send_granted", send_granted)
        setattr(link, "receive_span", receive_span)
        setattr(link, "_span_profiled", True)
        self.links_attached += 1

    def attach_all(self, links: List[Link]) -> None:
        """Wrap every link of a built network."""
        for link in links:
            self.attach(link)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready span histograms."""
        return {
            "links_attached": self.links_attached,
            "tx_span_hist": self.tx_spans.snapshot(),
            "rx_span_hist": self.rx_spans.snapshot(),
        }
