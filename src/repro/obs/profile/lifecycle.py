"""Worm lifecycle digestion: phase timings per packet.

:class:`WormLifecycleTracer` is a :class:`~repro.sim.trace.Tracer` that
sits where any tracer would (passed to ``build_network``) and *digests*
the event stream instead of retaining it: each worm's journey —
injection, header routed at each hop, branches replicated, tail drained
into the destination NI — is folded into one :class:`PacketLife` record
with a three-phase latency breakdown:

``setup``
    cycles from message creation to the first header flit entering the
    network (source queueing + NI serialisation backlog);
``blocked``
    cycles the header spent waiting beyond the nominal routing delay,
    summed over every hop (contention: arbitration losses, buffer-full
    and HOL blocking);
``transfer``
    the remainder up to tail delivery (pipelined movement at full rate).

For a unicast worm the phases tile the end-to-end latency exactly
(``setup + blocked + transfer == delivered - created``); a
multidestination worm sums ``blocked`` over *all* replicated branches,
which can exceed the wall interval of the single tail delivery, so
``transfer`` is clamped at zero.

An ``inner`` tracer can be chained so ordinary trace capture (e.g. a
:class:`~repro.obs.sinks.JsonlTracer` streaming to disk) keeps working
while the digest accumulates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.registry import BucketHistogram
from repro.sim.trace import Tracer

#: bucket upper bounds for per-phase latency histograms (cycles)
PHASE_BOUNDS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: events that mark a routing decision at a switch hop
_HOP_EVENTS = frozenset(("route", "bypass", "queue_cb", "admit_multidest"))


class PacketLife:
    """The digested lifecycle of one packet (one worm per destination
    path in the object plane; identified by its globally-unique id)."""

    __slots__ = (
        "packet_id",
        "created",
        "injected",
        "delivered",
        "flits",
        "hops",
        "branches",
        "blocked",
        "deliveries",
    )

    def __init__(self, packet_id: int) -> None:
        self.packet_id = packet_id
        #: cycle the owning message was created (source queue entry)
        self.created: Optional[int] = None
        #: cycle the first header flit entered the network
        self.injected: Optional[int] = None
        #: cycle the tail drained at the (last) destination
        self.delivered: Optional[int] = None
        #: worm length in flits
        self.flits = 0
        #: ``(cycle, switch, event, waited, branches)`` per routing hop
        self.hops: List[Dict[str, Any]] = []
        #: replication branches spawned across all hops (multidestination)
        self.branches = 0
        #: cycles spent blocked beyond nominal routing, summed over hops
        self.blocked = 0
        #: destination NIs that absorbed the tail (multicast > 1)
        self.deliveries = 0

    @property
    def complete(self) -> bool:
        """True once injection and at least one delivery were seen."""
        return (
            self.created is not None
            and self.injected is not None
            and self.delivered is not None
        )

    def phases(self) -> Dict[str, int]:
        """The three-phase latency breakdown (requires :attr:`complete`)."""
        assert (
            self.created is not None
            and self.injected is not None
            and self.delivered is not None
        )
        setup = self.injected - self.created
        transfer = max(0, self.delivered - self.injected - self.blocked)
        return {
            "setup": setup,
            "blocked": self.blocked,
            "transfer": transfer,
            "total": self.delivered - self.created,
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready record (phases included when complete)."""
        out: Dict[str, Any] = {
            "packet": self.packet_id,
            "created": self.created,
            "injected": self.injected,
            "delivered": self.delivered,
            "flits": self.flits,
            "hop_count": len(self.hops),
            "branches": self.branches,
            "deliveries": self.deliveries,
        }
        if self.complete:
            out.update(self.phases())
        return out


class WormLifecycleTracer(Tracer):
    """Digests lifecycle events into per-packet phase records.

    Always enabled (a disabled lifecycle tracer would simply not be
    constructed); retains no raw records of its own unless ``keep``
    is set — digestion happens inline in :meth:`emit`.
    """

    def __init__(
        self, inner: Optional[Tracer] = None, keep: bool = False
    ) -> None:
        super().__init__(enabled=True)
        self._keep = keep
        #: chained tracer receiving every event verbatim (or ``None``)
        self.inner = inner
        #: per-packet digests, keyed by globally-unique packet id
        self.packets: Dict[int, PacketLife] = {}
        self.setup_hist = BucketHistogram("worm.setup_cycles", PHASE_BOUNDS)
        self.blocked_hist = BucketHistogram(
            "worm.blocked_cycles", PHASE_BOUNDS
        )
        self.transfer_hist = BucketHistogram(
            "worm.transfer_cycles", PHASE_BOUNDS
        )
        #: events seen that carried no packet id (not digestible)
        self.ignored_events = 0

    def _life(self, packet_id: int) -> PacketLife:
        life = self.packets.get(packet_id)
        if life is None:
            life = self.packets[packet_id] = PacketLife(packet_id)
        return life

    def emit(
        self, cycle: int, source: str, event: str, **details: Any
    ) -> None:
        if self.inner is not None:
            self.inner.emit(cycle, source, event, **details)
        if self._keep:
            super().emit(cycle, source, event, **details)
        packet_id = details.get("packet")
        if packet_id is None:
            self.ignored_events += 1
            return
        if event == "inject_start":
            life = self._life(packet_id)
            life.created = details.get("created", cycle)
            life.injected = cycle
            life.flits = details.get("flits", 0)
        elif event in _HOP_EVENTS:
            life = self._life(packet_id)
            waited = max(0, details.get("waited", 0))
            branches = details.get("branches", 1)
            life.blocked += waited
            life.branches += max(0, branches - 1)
            life.hops.append(
                {
                    "cycle": cycle,
                    "switch": source,
                    "event": event,
                    "waited": waited,
                    "branches": branches,
                }
            )
        elif event == "packet_delivered":
            life = self._life(packet_id)
            life.deliveries += 1
            # multicast worms deliver at several NIs; the lifecycle
            # closes at the *last* arrival, like op_last_latency
            if life.delivered is None or cycle > life.delivered:
                life.delivered = cycle

    def finalise(self) -> List[PacketLife]:
        """Fold completed packets into the phase histograms and return
        them sorted by packet id (incomplete worms are left out)."""
        done = sorted(
            (p for p in self.packets.values() if p.complete),
            key=lambda p: p.packet_id,
        )
        for life in done:
            phases = life.phases()
            self.setup_hist.observe(phases["setup"])
            self.blocked_hist.observe(phases["blocked"])
            self.transfer_hist.observe(phases["transfer"])
        return done

    def phase_summary(self) -> Dict[str, Any]:
        """Aggregate phase statistics over completed packets.

        Call :meth:`finalise` first to populate the histograms.
        """

        def stats(hist: BucketHistogram) -> Dict[str, float]:
            mean = hist.total / hist.count if hist.count else 0.0
            return {"count": hist.count, "mean": round(mean, 2)}

        incomplete = sum(
            1 for p in self.packets.values() if not p.complete
        )
        return {
            "packets": len(self.packets),
            "incomplete": incomplete,
            "setup": stats(self.setup_hist),
            "blocked": stats(self.blocked_hist),
            "transfer": stats(self.transfer_hist),
            "setup_hist": self.setup_hist.snapshot(),
            "blocked_hist": self.blocked_hist.snapshot(),
            "transfer_hist": self.transfer_hist.snapshot(),
            "ignored_events": self.ignored_events,
        }
