"""Bench-trend reporting across recorded ``BENCH_*.json`` artifacts.

Each kernel-bench artifact (``python -m repro bench --out``) carries a
provenance manifest with its creation time; given several of them this
module lines the artifacts up chronologically and renders per-scenario
speedup trajectories, so a perf regression shows as a dip in a column
rather than a number someone has to remember.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.bench.kernel import BENCH_SCHEMA


class TrendError(ValueError):
    """An artifact could not be used for trend reporting."""


def load_artifact(path: str) -> Dict[str, Any]:
    """Read and minimally validate one bench artifact."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            artifact = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TrendError(f"{path}: {exc}") from exc
    if not isinstance(artifact, dict):
        raise TrendError(f"{path}: artifact must be a JSON object")
    if artifact.get("schema") != BENCH_SCHEMA:
        raise TrendError(
            f"{path}: schema {artifact.get('schema')!r} is not "
            f"{BENCH_SCHEMA!r}"
        )
    if not isinstance(artifact.get("scenarios"), list):
        raise TrendError(f"{path}: missing scenarios list")
    artifact.setdefault("_path", path)
    return artifact


def _timestamp(artifact: Dict[str, Any]) -> str:
    manifest = artifact.get("manifest")
    if isinstance(manifest, dict):
        created = manifest.get("created_at")
        if isinstance(created, str):
            return created
    return ""  # sorts before anything dated; order then falls back to argv


def collect_trend(
    paths: Sequence[str],
) -> Tuple[List[str], Dict[str, List[Any]]]:
    """Speedup trajectories over the artifacts at ``paths``.

    Returns ``(labels, {scenario: [speedup-or-None per artifact]})``
    with artifacts ordered by their manifest ``created_at``.
    """
    artifacts = sorted(
        (load_artifact(path) for path in paths), key=_timestamp
    )
    labels = [
        _timestamp(artifact) or str(artifact["_path"])
        for artifact in artifacts
    ]
    series: Dict[str, List[Any]] = {}
    for index, artifact in enumerate(artifacts):
        for row in artifact["scenarios"]:
            name = row.get("scenario")
            if not isinstance(name, str):
                continue
            column = series.setdefault(name, [None] * len(artifacts))
            column[index] = row.get("speedup")
    return labels, series


def render_trend(paths: Sequence[str]) -> str:
    """An aligned text table of speedup trajectories.

    One row per scenario, one column per artifact (chronological); the
    last column is annotated with the delta against the previous
    artifact so regressions read at a glance.
    """
    labels, series = collect_trend(paths)
    if not labels:
        return "no artifacts"
    lines: List[str] = ["speedup trend (oldest -> newest):"]
    for position, label in enumerate(labels):
        lines.append(f"  [{position}] {label}")
    name_width = max((len(name) for name in series), default=8)
    header = " ".join(f"[{i}]".rjust(7) for i in range(len(labels)))
    lines.append(f"{'scenario':>{name_width}} {header}  trend")
    for name in sorted(series):
        column = series[name]
        cells = " ".join(
            f"{value:7.2f}" if isinstance(value, (int, float)) else
            "      -"
            for value in column
        )
        numeric = [
            value for value in column if isinstance(value, (int, float))
        ]
        note = ""
        if len(numeric) >= 2:
            delta = numeric[-1] - numeric[-2]
            arrow = "+" if delta >= 0 else ""
            note = f"  {arrow}{delta:.2f}"
        lines.append(f"{name:>{name_width}} {cells}{note}")
    return "\n".join(lines)
