"""``python -m repro profile``: run one scenario fully instrumented.

Drives a benchmark scenario (default: ``saturation-hotspot``, the
tree-saturation case where contention is most visible) through the fast
flavour with every profiling instrument attached — kernel profiler,
span profiler, worm lifecycle tracer, metrics registry — then prints
the kernel attribution table, the per-phase worm latency breakdown and
the link-utilisation heatmap, and optionally exports a merged
Chrome-trace JSON (``--export-trace``) and a schema-tagged JSONL digest
(``--out``).

Profiling runs the same simulation code the goldens run: the
instruments observe through the kernel's profiler hook, the tracer
call sites and link counters, never by changing scheduling decisions —
so a profiled run's :meth:`~repro.network.simulation.SimulationResult.summary`
is bit-identical to an unprofiled one (asserted by
``tests/obs/profile/test_differential.py``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.kernel import SCENARIOS, Scenario
from repro.core.schemes import SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.profile.chrome_trace import build_trace, write_trace
from repro.obs.profile.heatmap import link_heatmap, render_heatmap
from repro.obs.profile.kernel_profiler import KernelProfiler, SpanProfiler
from repro.obs.profile.lifecycle import PacketLife, WormLifecycleTracer
from repro.obs.profile.trend import TrendError, render_trend
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import SCHEMA_LIFECYCLE, SCHEMA_PROFILE, JsonlWriter
from repro.obs.runtime import next_run_id
from repro.traffic.base import Workload

#: architecture spellings accepted by ``--arch``
ARCH_CHOICES = {
    "cb": SwitchArchitecture.CENTRAL_BUFFER,
    "ib": SwitchArchitecture.INPUT_BUFFER,
}


@dataclass
class ProfileReport:
    """Everything one instrumented run produced."""

    arch: str
    scenario: str
    cycles: int
    summary: Dict[str, float]
    kernel: KernelProfiler
    spans: SpanProfiler
    lifecycle: WormLifecycleTracer
    packets: List[PacketLife] = field(default_factory=list)
    heatmap: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def sections(self) -> Dict[str, Dict[str, Any]]:
        """Named JSON-ready sections for the JSONL digest."""
        return {
            "run": {
                "arch": self.arch,
                "scenario": self.scenario,
                "cycles": self.cycles,
                "summary": self.summary,
            },
            "kernel": self.kernel.snapshot(),
            "spans": self.spans.snapshot(),
            "phases": self.lifecycle.phase_summary(),
            "heatmap": self.heatmap,
            "counters": self.counters,
        }


def run_profiled(
    config: SimulationConfig,
    workload: Workload,
    arch_label: str = "",
    scenario_label: str = "",
    max_cycles: Optional[int] = None,
) -> ProfileReport:
    """Run ``workload`` on ``config`` with every instrument attached."""
    kernel = KernelProfiler()
    spans = SpanProfiler()
    lifecycle = WormLifecycleTracer()
    registry = MetricsRegistry(enabled=True)
    network = build_network(config, tracer=lifecycle, metrics=registry)
    network.sim.attach_profiler(kernel)
    # before the first tick: the packed central-buffer switch freezes
    # its per-port receive bindings on first use
    spans.attach_all(network.links)
    result = run_workload(network, workload, max_cycles=max_cycles)
    packets = lifecycle.finalise()
    return ProfileReport(
        arch=arch_label or config.switch_architecture.value,
        scenario=scenario_label,
        cycles=result.cycles,
        summary=result.summary(),
        kernel=kernel,
        spans=spans,
        lifecycle=lifecycle,
        packets=packets,
        heatmap=link_heatmap(network, result.cycles),
        counters={
            name: counter.value
            for name, counter in sorted(registry.counters.items())
        },
    )


def _render_kernel(report: ProfileReport) -> str:
    snap = report.kernel.snapshot()
    lines = [
        f"kernel [{report.arch}/{report.scenario}] — "
        f"{report.cycles} cycles: {snap['steps']} stepped, "
        f"{snap['cycles_skipped']} fast-forwarded "
        f"in {snap['fast_forwards']} jumps",
        f"  events fired: {snap['events']}, backlog mean "
        f"{snap['backlog_mean']} peak {snap['backlog_peak']}",
        "  ticks by component class:",
    ]
    ticks_by_class = snap["ticks_by_class"]
    total = max(1, snap["ticks"])
    for name, ticks in ticks_by_class.items():
        share = 100.0 * ticks / total
        lines.append(f"    {name:<28} {ticks:>10}  {share:5.1f}%")
    return "\n".join(lines)


def _render_phases(report: ProfileReport) -> str:
    phases = report.lifecycle.phase_summary()
    lines = [
        f"worm phases [{report.arch}/{report.scenario}] — "
        f"{phases['packets']} worms "
        f"({phases['incomplete']} still in flight):"
    ]
    for name in ("setup", "blocked", "transfer"):
        cell = phases[name]
        lines.append(
            f"  {name:<9} mean {cell['mean']:>8.2f} cycles "
            f"over {cell['count']} worms"
        )
    return "\n".join(lines)


def _write_digest(reports: Sequence[ProfileReport], path: str) -> int:
    """Stream all reports to a JSONL digest; returns lines written."""
    run = next_run_id()
    with JsonlWriter(path) as writer:
        for report in reports:
            for section, data in report.sections().items():
                writer.write(
                    {
                        "schema": SCHEMA_PROFILE,
                        "run": run,
                        "arch": report.arch,
                        "scenario": report.scenario,
                        "section": section,
                        "data": data,
                    }
                )
            for life in report.packets:
                record: Dict[str, Any] = {
                    "schema": SCHEMA_LIFECYCLE,
                    "run": run,
                    "arch": report.arch,
                }
                record.update(life.snapshot())
                writer.write(record)
        return writer.lines_written


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro profile`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Run one benchmark scenario with the profiling subsystem "
            "attached and report kernel attribution, worm phase "
            "latencies and link utilisation."
        ),
    )
    parser.add_argument(
        "--scenario", default="saturation-hotspot",
        help="bench scenario name (default: saturation-hotspot)",
    )
    parser.add_argument(
        "--arch", default="both", choices=[*ARCH_CHOICES, "both"],
        help="switch architecture(s) to profile (default: both)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=None,
        help="hard cycle cap for the profiled run",
    )
    parser.add_argument(
        "--export-trace", metavar="PATH",
        help="write a merged Chrome-trace JSON (chrome://tracing)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write a repro.profile/1 + repro.lifecycle/1 JSONL digest",
    )
    parser.add_argument(
        "--bench-trend", nargs="+", metavar="BENCH_JSON",
        help=(
            "report speedup trends across recorded bench artifacts "
            "instead of running a scenario"
        ),
    )
    args = parser.parse_args(argv)

    if args.bench_trend:
        try:
            print(render_trend(args.bench_trend))
        except TrendError as exc:
            print(f"profile: {exc}", file=sys.stderr)
            return 1
        return 0

    scenarios = {scenario.name: scenario for scenario in SCENARIOS}
    scenario: Optional[Scenario] = scenarios.get(args.scenario)
    if scenario is None:
        known = ", ".join(sorted(scenarios))
        print(
            f"profile: unknown scenario {args.scenario!r} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 1

    arch_labels = (
        list(ARCH_CHOICES) if args.arch == "both" else [args.arch]
    )
    reports: List[ProfileReport] = []
    for label in arch_labels:
        config = scenario.make_config(reference=False)
        config.switch_architecture = ARCH_CHOICES[label]
        report = run_profiled(
            config,
            scenario.make_workload(),
            arch_label=label,
            scenario_label=scenario.name,
            max_cycles=args.max_cycles,
        )
        reports.append(report)
        print(_render_kernel(report))
        print(_render_phases(report))
        print(render_heatmap(report.heatmap))
        spans = report.spans.snapshot()
        tx = spans["tx_span_hist"]
        rx = spans["rx_span_hist"]
        print(
            f"spans [{label}/{scenario.name}]: "
            f"{tx['count']} tx ops / {tx['total']:.0f} flits, "
            f"{rx['count']} rx ops / {rx['total']:.0f} flits "
            f"over {spans['links_attached']} links"
        )
        print()

    if args.export_trace:
        count = write_trace(build_trace(reports), args.export_trace)
        print(f"wrote {count} trace events to {args.export_trace}")
    if args.out:
        lines = _write_digest(reports, args.out)
        print(f"wrote {lines} digest records to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
