"""Opt-in profiling: kernel attribution, worm lifecycles, exporters.

Three coordinated instruments, all layered on the existing observability
runtime switch and all obeying its zero-overhead contract (bit-identical
goldens and no hot-path cost when off — see ``docs/observability.md``):

* :mod:`repro.obs.profile.kernel_profiler` — a
  :class:`~repro.sim.kernel.ProfilerHook` attributing stepped cycles to
  component classes and recording calendar events, wake backlog and
  fast-forwarded idle spans, plus a :class:`SpanProfiler` that observes
  packed-link span sizes by rebinding link instance attributes (zero
  cost when not attached).
* :mod:`repro.obs.profile.lifecycle` — a
  :class:`~repro.sim.trace.Tracer` digesting the simulator's event
  stream into per-worm phase timings (setup / blocked / transfer).
* exporters — :mod:`repro.obs.profile.chrome_trace` (Chrome/Perfetto
  ``traceEvents`` JSON), :mod:`repro.obs.profile.heatmap` (ASCII link
  utilisation per switch port) and :mod:`repro.obs.profile.trend`
  (speedup trajectories across ``BENCH_*.json`` artifacts).

``python -m repro profile`` (:mod:`repro.obs.profile.runner`) drives a
bench scenario through all three and prints/exports the results.
"""

from repro.obs.profile.kernel_profiler import KernelProfiler, SpanProfiler
from repro.obs.profile.lifecycle import PacketLife, WormLifecycleTracer
from repro.obs.profile.chrome_trace import (
    build_trace,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.profile.heatmap import link_heatmap, render_heatmap
from repro.obs.profile.trend import render_trend
from repro.obs.profile.runner import ProfileReport, run_profiled

__all__ = [
    "KernelProfiler",
    "PacketLife",
    "ProfileReport",
    "SpanProfiler",
    "WormLifecycleTracer",
    "build_trace",
    "link_heatmap",
    "render_heatmap",
    "render_trend",
    "run_profiled",
    "validate_chrome_trace",
    "write_trace",
]
