"""Chrome-trace (``traceEvents``) export of profiled runs.

The exported JSON loads directly into ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): one *process* row per profiled report (an
architecture/scenario pair), one *thread* row per worm, ``X`` complete
slices for the setup and transfer phases, ``i`` instants at every
routing hop, and a dedicated kernel thread showing fast-forwarded idle
spans.  Timestamps are simulated cycles mapped 1:1 onto microseconds —
the viewer's time axis reads directly in cycles.

Only a small, viewer-portable subset of the trace-event format is
emitted, and :func:`validate_chrome_trace` checks exactly that subset so
tests (and the CI ``profile-smoke`` step) can assert exports stay
well-formed without a browser in the loop.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.profile.runner import ProfileReport

#: thread id reserved for kernel (fast-forward) slices in each process
KERNEL_TID = 0

#: event phases this exporter emits / the validator accepts
_ALLOWED_PHASES = frozenset(("X", "i", "M", "C"))


def _process_events(pid: int, name: str) -> List[Dict[str, Any]]:
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": KERNEL_TID,
            "args": {"name": "kernel"},
        },
    ]


def build_trace(reports: Sequence["ProfileReport"]) -> Dict[str, Any]:
    """Build one merged trace dict from profiled reports.

    Each report becomes its own process row so a CB and an IB run of the
    same scenario sit side by side on a shared cycle axis.
    """
    events: List[Dict[str, Any]] = []
    for pid, report in enumerate(reports, start=1):
        label = f"{report.arch}/{report.scenario}"
        events.extend(_process_events(pid, label))
        for start, length in report.kernel.jumps:
            events.append(
                {
                    "name": "idle (fast-forwarded)",
                    "ph": "X",
                    "ts": start,
                    "dur": length,
                    "pid": pid,
                    "tid": KERNEL_TID,
                    "args": {"cycles": length},
                }
            )
        for life in report.packets:
            created = life.created
            injected = life.injected
            delivered = life.delivered
            if created is None or injected is None or delivered is None:
                continue  # incomplete worm: nothing to draw
            tid = life.packet_id + 1  # 0 is the kernel thread
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"worm {life.packet_id}"},
                }
            )
            if injected > created:
                events.append(
                    {
                        "name": "setup",
                        "ph": "X",
                        "ts": created,
                        "dur": injected - created,
                        "pid": pid,
                        "tid": tid,
                        "args": {"flits": life.flits},
                    }
                )
            events.append(
                {
                    "name": "transfer",
                    "ph": "X",
                    "ts": injected,
                    "dur": max(0, delivered - injected),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "flits": life.flits,
                        "blocked": life.blocked,
                        "hops": len(life.hops),
                        "deliveries": life.deliveries,
                    },
                }
            )
            for hop in life.hops:
                events.append(
                    {
                        "name": f"{hop['event']}@{hop['switch']}",
                        "ph": "i",
                        "ts": hop["cycle"],
                        "pid": pid,
                        "tid": tid,
                        "s": "t",
                        "args": {
                            "waited": hop["waited"],
                            "branches": hop["branches"],
                        },
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro profile",
            "time_unit": "1 us == 1 simulated cycle",
        },
    }


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural errors in ``trace``, empty when well-formed.

    Checks the subset of the trace-event format that
    :func:`build_trace` emits: a ``traceEvents`` list of dicts, each
    with a string ``name``, a known ``ph``, integer ``pid``/``tid``,
    and (for timed phases) a non-negative ``ts`` — ``X`` slices also
    need a non-negative ``dur``.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing or empty name")
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if phase in ("X", "i", "C"):
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative int")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative int")
    return errors


def write_trace(trace: Dict[str, Any], path: str) -> int:
    """Validate ``trace`` and write it to ``path``; returns the event
    count.  Raises ``ValueError`` on a malformed trace rather than
    writing a file no viewer will load."""
    errors = validate_chrome_trace(trace)
    if errors:
        shown = "; ".join(errors[:5])
        raise ValueError(f"refusing to write malformed trace: {shown}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")
    return len(trace["traceEvents"])
