"""Workload generators for the paper's evaluation axes."""

from repro.traffic.base import Workload
from repro.traffic.schedules import PoissonArrivals
from repro.traffic.unicast import PermutationTraffic, UniformRandomUnicast
from repro.traffic.multicast import (
    MultipleMulticastBurst,
    RandomMulticastStream,
    SingleMulticast,
)
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.trace import TraceRecord, TraceWorkload

__all__ = [
    "BimodalTraffic",
    "HotspotTraffic",
    "MultipleMulticastBurst",
    "PermutationTraffic",
    "PoissonArrivals",
    "RandomMulticastStream",
    "SingleMulticast",
    "TraceRecord",
    "TraceWorkload",
    "UniformRandomUnicast",
    "Workload",
]
