"""Arrival processes for open-loop traffic generation."""

from __future__ import annotations

from random import Random


class PoissonArrivals:
    """Integer-cycle Poisson arrivals with a given mean inter-arrival time.

    Gaps are exponentially distributed, rounded to whole cycles with a
    floor of one cycle, which preserves the mean well for the gap sizes
    (tens to thousands of cycles) these experiments use.
    """

    def __init__(self, mean_gap: float) -> None:
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        self.mean_gap = mean_gap

    def next_gap(self, rng: Random) -> int:
        """Draw the next inter-arrival gap in cycles (>= 1)."""
        return max(1, round(rng.expovariate(1.0 / self.mean_gap)))


def mean_gap_for_load(
    load: float, packet_size_flits: int
) -> float:
    """Inter-arrival mean that offers ``load`` of a link's bandwidth.

    ``load`` is the fraction of a host's injection-link capacity (one
    flit per cycle) consumed by packets of ``packet_size_flits`` flits.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError("load must be in (0, 1]")
    if packet_size_flits < 1:
        raise ValueError("packet_size_flits must be >= 1")
    return packet_size_flits / load
