"""Multicast workloads: bursts, single operations, and open-loop streams."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.core.schemes import MulticastScheme
from repro.flits.destset import DestinationSet
from repro.traffic.base import Workload
from repro.traffic.schedules import PoissonArrivals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


def _random_destinations(
    rng, universe: int, source: int, degree: int
) -> DestinationSet:
    """``degree`` distinct destinations, excluding the source."""
    if degree >= universe:
        raise ValueError(
            f"degree {degree} does not fit a system of {universe} hosts"
        )
    others = list(range(universe))
    others.remove(source)
    return DestinationSet.from_ids(universe, rng.sample(others, degree))


class SingleMulticast(Workload):
    """One multicast operation on an otherwise idle network.

    The cleanest way to measure base multicast latency (degree and
    message-length sweeps, E2/E3).
    """

    name = "single_multicast"

    def __init__(
        self,
        source: int,
        payload_flits: int,
        scheme: MulticastScheme,
        destinations: Optional[Sequence[int]] = None,
        degree: Optional[int] = None,
        start_cycle: int = 0,
    ) -> None:
        if (destinations is None) == (degree is None):
            raise ValueError("give exactly one of destinations or degree")
        self.source = source
        self.payload_flits = payload_flits
        self.scheme = scheme
        self.destinations = list(destinations) if destinations else None
        self.degree = degree
        self.start_cycle = start_cycle

    def start(self, network: "Network") -> None:
        network.collector.set_sample_window(0)
        if self.destinations is not None:
            dest_set = DestinationSet.from_ids(
                network.num_hosts, self.destinations
            )
        else:
            rng = network.sim.rng.stream("workload.single_multicast")
            dest_set = _random_destinations(
                rng, network.num_hosts, self.source, self.degree
            )

        def fire() -> None:
            network.nodes[self.source].post_multicast(
                dest_set, self.payload_flits, self.scheme
            )

        network.sim.schedule_at(self.start_cycle, fire)

    def finished(self, network: "Network") -> bool:
        collector = network.collector
        return (
            network.sim.now > self.start_cycle
            and collector.operations_created > 0
            and collector.outstanding_operations == 0
            and collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return 2_000_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() needs now to pass the posting cycle
        return (self.start_cycle + 1,)


class MultipleMulticastBurst(Workload):
    """*m* simultaneous multicasts from distinct random sources (E1).

    All operations are posted in the same cycle; the experiment ends when
    the last destination of the last operation has received its copy —
    the paper's multiple-multicast scenario, where concurrent worms
    contend for switch buffers and links.
    """

    name = "multiple_multicast"

    def __init__(
        self,
        num_multicasts: int,
        degree: int,
        payload_flits: int,
        scheme: MulticastScheme,
        start_cycle: int = 0,
    ) -> None:
        if num_multicasts < 1:
            raise ValueError("num_multicasts must be >= 1")
        self.num_multicasts = num_multicasts
        self.degree = degree
        self.payload_flits = payload_flits
        self.scheme = scheme
        self.start_cycle = start_cycle

    def start(self, network: "Network") -> None:
        if self.num_multicasts > network.num_hosts:
            raise ValueError("more multicasts than hosts to source them")
        network.collector.set_sample_window(0)
        rng = network.sim.rng.stream("workload.multiple_multicast")
        sources = rng.sample(range(network.num_hosts), self.num_multicasts)
        plans = [
            (
                source,
                _random_destinations(
                    rng, network.num_hosts, source, self.degree
                ),
            )
            for source in sources
        ]

        def fire() -> None:
            for source, dest_set in plans:
                network.nodes[source].post_multicast(
                    dest_set, self.payload_flits, self.scheme
                )

        network.sim.schedule_at(self.start_cycle, fire)

    def finished(self, network: "Network") -> bool:
        collector = network.collector
        return (
            network.sim.now > self.start_cycle
            and collector.operations_created == self.num_multicasts
            and collector.outstanding_operations == 0
            and collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return 5_000_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() needs now to pass the posting cycle
        return (self.start_cycle + 1,)


class RandomMulticastStream(Workload):
    """Open-loop stream of multicasts at a per-host operation rate.

    Each host starts multicast operations with Poisson arrivals; used to
    study sustained multicast throughput rather than one-shot latency.
    """

    name = "multicast_stream"

    def __init__(
        self,
        ops_per_host_per_kilocycle: float,
        degree: int,
        payload_flits: int,
        scheme: MulticastScheme,
        warmup_cycles: int = 2_000,
        measure_cycles: int = 10_000,
    ) -> None:
        if ops_per_host_per_kilocycle <= 0:
            raise ValueError("operation rate must be positive")
        self.rate = ops_per_host_per_kilocycle
        self.degree = degree
        self.payload_flits = payload_flits
        self.scheme = scheme
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self._stop_generation = warmup_cycles + measure_cycles

    def start(self, network: "Network") -> None:
        network.collector.set_sample_window(
            self.warmup_cycles, self._stop_generation
        )
        arrivals = PoissonArrivals(1_000.0 / self.rate)
        rng = network.sim.rng.stream("workload.multicast_stream")
        for host in range(network.num_hosts):
            self._schedule_next(network, host, arrivals, rng)

    def _schedule_next(self, network, host, arrivals, rng) -> None:
        when = network.sim.now + arrivals.next_gap(rng)
        if when >= self._stop_generation:
            return

        def fire() -> None:
            dest_set = _random_destinations(
                rng, network.num_hosts, host, self.degree
            )
            network.nodes[host].post_multicast(
                dest_set, self.payload_flits, self.scheme
            )
            self._schedule_next(network, host, arrivals, rng)

        network.sim.schedule_at(when, fire)

    def finished(self, network: "Network") -> bool:
        return (
            network.sim.now >= self._stop_generation
            and network.collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return self._stop_generation * 20 + 500_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() flips on sim.now reaching the generation stop
        return (self._stop_generation,)
