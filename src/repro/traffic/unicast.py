"""Point-to-point background workloads."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.traffic.base import Workload
from repro.traffic.schedules import PoissonArrivals, mean_gap_for_load

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


class UniformRandomUnicast(Workload):
    """Open-loop uniform random unicast traffic at a given offered load.

    Every host generates messages with Poisson arrivals; each message
    targets a uniformly random other host.  Generation runs for
    ``warmup_cycles + measure_cycles``; statistics sample only messages
    created in the measurement window; the run then drains.
    """

    name = "uniform_unicast"

    def __init__(
        self,
        load: float,
        payload_flits: int = 32,
        warmup_cycles: int = 2_000,
        measure_cycles: int = 10_000,
    ) -> None:
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        if warmup_cycles < 0 or measure_cycles < 1:
            raise ValueError("invalid warmup/measure window")
        self.load = load
        self.payload_flits = payload_flits
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self._stop_generation = warmup_cycles + measure_cycles

    def start(self, network: "Network") -> None:
        header = network.unicast_header_flits()
        arrivals = PoissonArrivals(
            mean_gap_for_load(self.load, header + self.payload_flits)
        )
        network.collector.set_sample_window(
            self.warmup_cycles, self._stop_generation
        )
        rng = network.sim.rng.stream("workload.unicast")
        for host in range(network.num_hosts):
            self._schedule_next(network, host, arrivals, rng)

    def _schedule_next(self, network, host, arrivals, rng) -> None:
        gap = arrivals.next_gap(rng)
        when = network.sim.now + gap
        if when >= self._stop_generation:
            return

        def fire() -> None:
            destination = rng.randrange(network.num_hosts - 1)
            if destination >= host:
                destination += 1
            network.nodes[host].post_unicast(destination, self.payload_flits)
            self._schedule_next(network, host, arrivals, rng)

        network.sim.schedule_at(when, fire)

    def finished(self, network: "Network") -> bool:
        return (
            network.sim.now >= self._stop_generation
            and network.collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return self._stop_generation * 20 + 200_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() flips on sim.now reaching the generation stop
        return (self._stop_generation,)


class PermutationTraffic(Workload):
    """Each host sends one message to a fixed permutation partner.

    A closed, finite workload useful for validation: with the bit-reversal
    or shift permutations on a MIN the zero-load latency of every message
    is analytically known.
    """

    name = "permutation"

    def __init__(
        self,
        payload_flits: int = 32,
        shift: int = 1,
        start_cycle: int = 0,
        permutation: Optional[list] = None,
    ) -> None:
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        self.payload_flits = payload_flits
        self.shift = shift
        self.start_cycle = start_cycle
        self.permutation = permutation

    def start(self, network: "Network") -> None:
        network.collector.set_sample_window(0)
        n = network.num_hosts
        mapping = self.permutation or [
            (host + self.shift) % n for host in range(n)
        ]
        if sorted(mapping) != list(range(n)):
            raise ValueError("mapping is not a permutation")

        def fire() -> None:
            for host, destination in enumerate(mapping):
                if destination != host:
                    network.nodes[host].post_unicast(
                        destination, self.payload_flits
                    )

        network.sim.schedule_at(self.start_cycle, fire)

    def finished(self, network: "Network") -> bool:
        return (
            network.sim.now > self.start_cycle
            and network.collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return 1_000_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() needs now to pass the injection cycle
        return (self.start_cycle + 1,)
