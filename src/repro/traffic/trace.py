"""Trace-driven workloads: replay an explicit message schedule.

For calibration, regression pinning, and apples-to-apples comparisons,
an experiment sometimes needs the *exact same* message sequence across
configurations rather than a statistically identical one.  A
:class:`TraceWorkload` replays a list of :class:`TraceRecord` entries —
or a CSV export of one — injecting each message at its recorded cycle.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence, Tuple, Union

from repro.core.schemes import MulticastScheme
from repro.flits.destset import DestinationSet
from repro.traffic.base import Workload


@dataclass(frozen=True)
class TraceRecord:
    """One scheduled message: unicast or multicast."""

    cycle: int
    source: int
    destinations: Tuple[int, ...]
    payload_flits: int
    #: None for unicast; a scheme for multicast operations
    scheme: Optional[MulticastScheme] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if not self.destinations:
            raise ValueError("a record needs at least one destination")
        if self.payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        if len(self.destinations) > 1 and self.scheme is None:
            raise ValueError("multi-destination records need a scheme")

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------
    def to_csv_row(self) -> str:
        """``cycle,source,payload,scheme,dest1;dest2;...``"""
        scheme = self.scheme.value if self.scheme else "unicast"
        dests = ";".join(str(d) for d in self.destinations)
        return f"{self.cycle},{self.source},{self.payload_flits},{scheme},{dests}"

    @classmethod
    def from_csv_row(cls, row: str) -> "TraceRecord":
        """Inverse of :meth:`to_csv_row`."""
        parts = row.strip().split(",")
        if len(parts) != 5:
            raise ValueError(f"malformed trace row: {row!r}")
        cycle, source, payload, scheme_text, dests = parts
        scheme = (
            None if scheme_text == "unicast"
            else MulticastScheme(scheme_text)
        )
        return cls(
            cycle=int(cycle),
            source=int(source),
            destinations=tuple(int(d) for d in dests.split(";")),
            payload_flits=int(payload),
            scheme=scheme,
        )


class TraceWorkload(Workload):
    """Replays an explicit message schedule, then drains."""

    name = "trace"

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        if not records:
            raise ValueError("a trace needs at least one record")
        self.records = sorted(records, key=lambda r: r.cycle)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_csv(cls, text_or_stream: Union[str, IO[str]]) -> "TraceWorkload":
        """Parse a trace from CSV text or a readable stream.

        Blank lines and lines starting with ``#`` are ignored.
        """
        if isinstance(text_or_stream, str):
            stream: IO[str] = io.StringIO(text_or_stream)
        else:
            stream = text_or_stream
        records: List[TraceRecord] = []
        for line in stream:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            records.append(TraceRecord.from_csv_row(stripped))
        return cls(records)

    def to_csv(self) -> str:
        """The trace as CSV text (header comment included)."""
        lines = ["# cycle,source,payload_flits,scheme,destinations"]
        lines.extend(record.to_csv_row() for record in self.records)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Workload contract
    # ------------------------------------------------------------------
    def start(self, network) -> None:
        network.collector.set_sample_window(0)
        for record in self.records:
            if record.source >= network.num_hosts:
                raise ValueError(
                    f"trace source {record.source} outside the system"
                )
            network.sim.schedule_at(
                record.cycle, self._firer(network, record)
            )

    @staticmethod
    def _firer(network, record: TraceRecord):
        def fire() -> None:
            node = network.nodes[record.source]
            if record.scheme is None:
                node.post_unicast(
                    record.destinations[0], record.payload_flits
                )
            else:
                node.post_multicast(
                    DestinationSet.from_ids(
                        network.num_hosts, record.destinations
                    ),
                    record.payload_flits,
                    record.scheme,
                )
        return fire

    def finished(self, network) -> bool:
        return (
            network.sim.now > self.records[-1].cycle
            and network.collector.outstanding_messages == 0
            and network.sim.pending_events == 0
        )

    def max_cycles_hint(self) -> int:
        return self.records[-1].cycle + 2_000_000

    def time_marks(self, network) -> Tuple[int, ...]:
        # finished() needs now to pass the last record's injection cycle
        return (self.records[-1].cycle + 1,)
