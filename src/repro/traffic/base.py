"""The workload contract.

A workload schedules message generation onto a built network and decides
when the experiment is over.  Workloads never touch flits or switches —
they talk to :class:`~repro.host.node.HostNode` objects only, exactly as
application software would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


class Workload(ABC):
    """Drives message generation for one experiment run."""

    #: short identifier used in reports
    name: str = "workload"

    @abstractmethod
    def start(self, network: "Network") -> None:
        """Schedule the workload's initial events on the network's kernel.

        Implementations should also call
        ``network.collector.set_sample_window(...)`` so warm-up traffic is
        excluded from statistics.
        """

    @abstractmethod
    def finished(self, network: "Network") -> bool:
        """True when the experiment is complete (checked every cycle)."""

    def max_cycles_hint(self) -> int:
        """A generous upper bound on run length, for runaway protection."""
        return 10_000_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        """Cycles at which :meth:`finished` may change value *by time
        alone* (no component activity, no calendar event).

        The active-set kernel fast-forwards across idle gaps and only
        re-evaluates the finish predicate at cycles where something is
        due.  A workload whose predicate compares ``sim.now`` against a
        threshold (e.g. "stop generating after the measurement window")
        must declare those thresholds here so
        :func:`repro.network.simulation.run_workload` can register them
        as time marks (:meth:`repro.sim.kernel.Simulator.mark_time`) and
        the fast-forward never jumps past a decision point.  Purely
        delivery-driven predicates need no marks.
        """
        return ()
