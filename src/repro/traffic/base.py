"""The workload contract.

A workload schedules message generation onto a built network and decides
when the experiment is over.  Workloads never touch flits or switches —
they talk to :class:`~repro.host.node.HostNode` objects only, exactly as
application software would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


class Workload(ABC):
    """Drives message generation for one experiment run."""

    #: short identifier used in reports
    name: str = "workload"

    @abstractmethod
    def start(self, network: "Network") -> None:
        """Schedule the workload's initial events on the network's kernel.

        Implementations should also call
        ``network.collector.set_sample_window(...)`` so warm-up traffic is
        excluded from statistics.
        """

    @abstractmethod
    def finished(self, network: "Network") -> bool:
        """True when the experiment is complete (checked every cycle)."""

    def max_cycles_hint(self) -> int:
        """A generous upper bound on run length, for runaway protection."""
        return 10_000_000
