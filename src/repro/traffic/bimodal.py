"""Bimodal traffic: background unicast plus a multicast component (E4).

The paper's bimodal experiments measure how a multicast implementation
degrades the *other* traffic: hosts generate a Poisson stream in which a
fraction of messages are multicasts and the rest are ordinary unicasts.
Because a software multicast turns one operation into ~d unicasts with
fresh start-ups, it loads the network far more than one multidestination
worm — the effect this workload exposes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.schemes import MulticastScheme
from repro.traffic.base import Workload
from repro.traffic.multicast import _random_destinations
from repro.traffic.schedules import PoissonArrivals, mean_gap_for_load

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


class BimodalTraffic(Workload):
    """Mixed unicast/multicast open-loop traffic.

    Parameters
    ----------
    load:
        Offered fraction of each host's injection bandwidth, computed
        from the *generation* rate with unicast-sized messages — the same
        nominal load therefore produces identical message streams for
        hardware and software multicast, isolating the scheme's impact.
    multicast_fraction:
        Probability that a generated message is a multicast operation.
    degree:
        Destinations per multicast.
    scheme:
        How multicasts are implemented (unicasts are unaffected).
    """

    name = "bimodal"

    def __init__(
        self,
        load: float,
        multicast_fraction: float = 1.0 / 16.0,
        degree: int = 8,
        payload_flits: int = 32,
        scheme: MulticastScheme = MulticastScheme.HARDWARE,
        warmup_cycles: int = 2_000,
        measure_cycles: int = 10_000,
    ) -> None:
        if not 0.0 <= multicast_fraction <= 1.0:
            raise ValueError("multicast_fraction must be within [0, 1]")
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        self.load = load
        self.multicast_fraction = multicast_fraction
        self.degree = degree
        self.payload_flits = payload_flits
        self.scheme = scheme
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self._stop_generation = warmup_cycles + measure_cycles

    def start(self, network: "Network") -> None:
        header = network.unicast_header_flits()
        arrivals = PoissonArrivals(
            mean_gap_for_load(self.load, header + self.payload_flits)
        )
        network.collector.set_sample_window(
            self.warmup_cycles, self._stop_generation
        )
        rng = network.sim.rng.stream("workload.bimodal")
        for host in range(network.num_hosts):
            self._schedule_next(network, host, arrivals, rng)

    def _schedule_next(self, network, host, arrivals, rng) -> None:
        when = network.sim.now + arrivals.next_gap(rng)
        if when >= self._stop_generation:
            return

        def fire() -> None:
            if rng.random() < self.multicast_fraction:
                dest_set = _random_destinations(
                    rng, network.num_hosts, host, self.degree
                )
                network.nodes[host].post_multicast(
                    dest_set, self.payload_flits, self.scheme
                )
            else:
                destination = rng.randrange(network.num_hosts - 1)
                if destination >= host:
                    destination += 1
                network.nodes[host].post_unicast(
                    destination, self.payload_flits
                )
            self._schedule_next(network, host, arrivals, rng)

        network.sim.schedule_at(when, fire)

    def finished(self, network: "Network") -> bool:
        return (
            network.sim.now >= self._stop_generation
            and network.collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return self._stop_generation * 30 + 500_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() flips on sim.now reaching the generation stop
        return (self._stop_generation,)
