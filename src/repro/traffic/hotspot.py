"""Hot-spot traffic (the paper's "we are also studying" pattern).

A fraction of all unicast messages target one *hot* host (a file server,
a lock home, a reduction root); the rest are uniform random.  Hot-spot
traffic is the classic stress test for buffer organisations: tree
saturation around the hot module fills buffers along whole paths, and a
shared central buffer absorbs the transient far better than statically
partitioned input buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.traffic.base import Workload
from repro.traffic.schedules import PoissonArrivals, mean_gap_for_load

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


class HotspotTraffic(Workload):
    """Uniform unicast background with a hot destination.

    Parameters
    ----------
    load:
        Offered fraction of each host's injection bandwidth.
    hotspot_fraction:
        Probability a message targets the hot host instead of a uniform
        destination.
    hotspot_host:
        The hot destination (never generates hot traffic to itself).
    """

    name = "hotspot"

    def __init__(
        self,
        load: float,
        hotspot_fraction: float = 0.05,
        hotspot_host: int = 0,
        payload_flits: int = 32,
        warmup_cycles: int = 2_000,
        measure_cycles: int = 10_000,
    ) -> None:
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be within [0, 1]")
        if payload_flits < 1:
            raise ValueError("payload_flits must be >= 1")
        self.load = load
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_host = hotspot_host
        self.payload_flits = payload_flits
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self._stop_generation = warmup_cycles + measure_cycles

    def start(self, network: "Network") -> None:
        if not 0 <= self.hotspot_host < network.num_hosts:
            raise ValueError(
                f"hotspot host {self.hotspot_host} outside the system"
            )
        header = network.unicast_header_flits()
        arrivals = PoissonArrivals(
            mean_gap_for_load(self.load, header + self.payload_flits)
        )
        network.collector.set_sample_window(
            self.warmup_cycles, self._stop_generation
        )
        rng = network.sim.rng.stream("workload.hotspot")
        for host in range(network.num_hosts):
            self._schedule_next(network, host, arrivals, rng)

    def _schedule_next(self, network, host, arrivals, rng) -> None:
        when = network.sim.now + arrivals.next_gap(rng)
        if when >= self._stop_generation:
            return

        def fire() -> None:
            hot = (
                rng.random() < self.hotspot_fraction
                and host != self.hotspot_host
            )
            if hot:
                destination = self.hotspot_host
            else:
                destination = rng.randrange(network.num_hosts - 1)
                if destination >= host:
                    destination += 1
            network.nodes[host].post_unicast(destination, self.payload_flits)
            self._schedule_next(network, host, arrivals, rng)

        network.sim.schedule_at(when, fire)

    def finished(self, network: "Network") -> bool:
        return (
            network.sim.now >= self._stop_generation
            and network.collector.outstanding_messages == 0
        )

    def max_cycles_hint(self) -> int:
        return self._stop_generation * 40 + 500_000

    def time_marks(self, network: "Network") -> Tuple[int, ...]:
        # finished() flips on sim.now reaching the generation stop
        return (self._stop_generation,)
