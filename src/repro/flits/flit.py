"""Flits: the unit of link transfer and flow control.

A flit belongs to a :class:`~repro.flits.worm.Worm` (one replicated branch
of a packet).  Replication duplicates a flit's bits, not its identity, so
flits of sibling branches share the same packet and index but different
worms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flits.packet import Packet
    from repro.flits.worm import Worm


class Flit:
    """One flit of a worm, identified by ``(worm, index)``."""

    __slots__ = ("worm", "index")

    def __init__(self, worm: "Worm", index: int) -> None:
        if not 0 <= index < worm.size_flits:
            raise ValueError(
                f"flit index {index} outside worm of {worm.size_flits} flits"
            )
        self.worm = worm
        self.index = index

    @property
    def packet(self) -> "Packet":
        """The packet whose data this flit carries."""
        return self.worm.packet

    @property
    def is_head(self) -> bool:
        """True for the first flit, which opens routing at each switch."""
        return self.index == 0

    @property
    def is_header(self) -> bool:
        """True for every flit of the routing header."""
        return self.index < self.worm.header_flits

    @property
    def is_tail(self) -> bool:
        """True for the final flit, which releases resources as it drains."""
        return self.index == self.worm.size_flits - 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flit):
            return NotImplemented
        return self.worm is other.worm and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.worm), self.index))

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({self.packet.packet_id}:{self.index}{kind})"
