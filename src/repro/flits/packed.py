"""Packed flit representation: the allocation-free data plane.

The object data plane moves one :class:`~repro.flits.flit.Flit` instance
per link per cycle.  At saturation that allocation churn dominates the
simulator's run time (see ``docs/performance.md``), so the packed data
plane replaces flit *objects* in the hot path with flit *coordinates*:

* a flit is ``(worm, index)``; a contiguous run of flits of one worm is
  a *span* ``(worm, start, count)`` whose members arrive on consecutive
  cycles — the unit links and packed components move per wake;
* in-flight spans are stored as ints in a preallocated array-of-struct
  ring (:class:`SpanQueue`): three ints per record ``(arrival, start,
  count)`` plus a parallel worm-reference table, so pushing, merging and
  taking spans are integer slice operations with no per-flit objects;
* for the conversion boundary (telemetry, tracing, goldens, the object
  reference path) a single flit packs losslessly into one int *word*
  (:func:`pack_word`) with a :class:`WormTable` interning live worms to
  slot numbers; :meth:`WormTable.decode` materialises the equivalent
  :class:`~repro.flits.flit.Flit` object.

Packed-path modules (``repro.switches.packed_central``,
``repro.switches.packed_input``, ``repro.host.packed_interface``) must
not construct ``Flit`` objects — enforced by reprolint rule REP008.  The
helpers here (:func:`flit_repr`, :func:`span_flits`, ``decode``) are the
sanctioned escape hatch: they live outside the packed modules and keep
every observable (trace strings, delivered worms, metric attribution)
bit-identical to the object path.

Word layout (``WORD_INDEX_BITS`` = 28)::

    word = (slot << 32) | (flags << 28) | index

    bit 63..32  worm slot in the WormTable
    bit 31..28  flags: 1 = head, 2 = tail, 4 = header
    bit 27..0   flit index within the worm
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.flits.flit import Flit
from repro.flits.worm import Worm

#: width of the index field in a packed word
WORD_INDEX_BITS = 28
#: flag bits stored alongside the index
FLAG_HEAD = 1
FLAG_TAIL = 2
FLAG_HEADER = 4

_INDEX_MASK = (1 << WORD_INDEX_BITS) - 1
_FLAG_SHIFT = WORD_INDEX_BITS
_SLOT_SHIFT = WORD_INDEX_BITS + 4
_FLAG_MASK = 0xF


def flit_flags(worm: Worm, index: int) -> int:
    """The flag bits of flit ``index`` of ``worm``."""
    flags = 0
    if index == 0:
        flags |= FLAG_HEAD
    if index == worm.size_flits - 1:
        flags |= FLAG_TAIL
    if index < worm.header_flits:
        flags |= FLAG_HEADER
    return flags


def pack_word(slot: int, index: int, flags: int) -> int:
    """Pack a worm slot, flit index and flag bits into one int."""
    if not 0 <= index <= _INDEX_MASK:
        raise ProtocolError(f"flit index {index} exceeds {WORD_INDEX_BITS} bits")
    if slot < 0:
        raise ProtocolError(f"worm slot {slot} must be non-negative")
    return (slot << _SLOT_SHIFT) | (flags << _FLAG_SHIFT) | index


def unpack_word(word: int) -> Tuple[int, int, int]:
    """Invert :func:`pack_word`: ``(slot, index, flags)``."""
    return (
        word >> _SLOT_SHIFT,
        word & _INDEX_MASK,
        (word >> _FLAG_SHIFT) & _FLAG_MASK,
    )


def flit_repr(worm: Worm, index: int) -> str:
    """``repr`` of flit ``(worm, index)`` without materialising it.

    Byte-identical to :meth:`repro.flits.flit.Flit.__repr__`, so packed
    trace events compare equal to object-path trace events.
    """
    if index == 0:
        kind = "H"
    elif index == worm.size_flits - 1:
        kind = "T"
    else:
        kind = "B"
    return f"Flit({worm.packet.packet_id}:{index}{kind})"


def span_flits(worm: Worm, start: int, count: int) -> Iterator[Flit]:
    """Materialise the :class:`Flit` objects of a span, in order.

    Conversion helper for the object reference path and for telemetry
    that genuinely needs flit objects; never used inside packed modules.
    """
    for index in range(start, start + count):
        yield Flit(worm, index)


class WormTable:
    """Interns live :class:`Worm` objects to dense integer slots.

    The packed word format identifies a worm by slot number; the table
    keeps the mapping bijective while the worm is in flight and recycles
    slots after :meth:`release`, so the slot space stays as dense as the
    number of concurrently live worms.
    """

    def __init__(self) -> None:
        self._worms: List[Optional[Worm]] = []
        self._free: List[int] = []
        self._slots: dict = {}

    def __len__(self) -> int:
        return len(self._slots)

    def intern(self, worm: Worm) -> int:
        """The slot of ``worm``, allocating one on first sight."""
        slot = self._slots.get(id(worm))
        if slot is not None:
            return slot
        if self._free:
            slot = self._free.pop()
            self._worms[slot] = worm
        else:
            slot = len(self._worms)
            self._worms.append(worm)
        self._slots[id(worm)] = slot
        return slot

    def worm(self, slot: int) -> Worm:
        """The worm interned at ``slot``."""
        worm = self._worms[slot] if 0 <= slot < len(self._worms) else None
        if worm is None:
            raise ProtocolError(f"worm slot {slot} is not live")
        return worm

    def release(self, worm: Worm) -> None:
        """Recycle the slot of a worm that left the packed plane."""
        slot = self._slots.pop(id(worm), None)
        if slot is None:
            raise ProtocolError("releasing a worm that was never interned")
        self._worms[slot] = None
        self._free.append(slot)

    def encode(self, worm: Worm, index: int) -> int:
        """Pack flit ``(worm, index)`` into one word."""
        if not 0 <= index < worm.size_flits:
            raise ProtocolError(
                f"flit index {index} outside worm of {worm.size_flits} flits"
            )
        return pack_word(self.intern(worm), index, flit_flags(worm, index))

    def decode(self, word: int) -> Flit:
        """Materialise the :class:`Flit` a word denotes (lossless)."""
        slot, index, _ = unpack_word(word)
        return Flit(self.worm(slot), index)


class SpanQueue:
    """Preallocated array-of-struct ring of in-flight flit spans.

    One record is three ints — ``(arrival, start, count)`` — in a flat
    ring buffer plus a parallel worm-reference list: flit ``start + j``
    of the record's worm arrives at cycle ``arrival + j``.  Pushes merge
    into the newest record when worm, index and arrival are contiguous,
    so a steady sender occupies a single record regardless of length;
    :meth:`take` returns the longest arrived prefix of the oldest record
    and shrinks it in place.  No per-flit object is ever allocated.
    """

    __slots__ = ("_cap", "_mask", "_arr", "_worms", "_head", "_tail", "_flits")

    def __init__(self, capacity: int = 8) -> None:
        cap = 1
        while cap < capacity:
            cap <<= 1
        self._cap = cap
        self._mask = cap - 1
        self._arr = [0] * (3 * cap)
        self._worms: List[Optional[Worm]] = [None] * cap
        #: absolute record counters; slot = counter & mask
        self._head = 0
        self._tail = 0
        self._flits = 0

    def __len__(self) -> int:
        """Total flits queued (not records)."""
        return self._flits

    @property
    def records(self) -> int:
        """Occupied records (distinct unmerged spans)."""
        return self._tail - self._head

    def push_span(self, arrival: int, worm: Worm, start: int, count: int) -> None:
        """Queue ``count`` flits of ``worm`` from ``start``, arriving on
        consecutive cycles beginning at ``arrival``."""
        if count < 1:
            raise ValueError("span count must be positive")
        arr = self._arr
        if self._tail != self._head:
            slot = (self._tail - 1) & self._mask
            base = 3 * slot
            if (
                self._worms[slot] is worm
                and arr[base + 1] + arr[base + 2] == start
                and arr[base] + arr[base + 2] == arrival
            ):
                arr[base + 2] += count
                self._flits += count
                return
        if self._tail - self._head == self._cap:
            self._grow()
            arr = self._arr
        slot = self._tail & self._mask
        base = 3 * slot
        arr[base] = arrival
        arr[base + 1] = start
        arr[base + 2] = count
        self._worms[slot] = worm
        self._tail += 1
        self._flits += count

    def push(self, arrival: int, worm: Worm, index: int) -> None:
        """Queue a single flit (merged into the newest span if contiguous)."""
        self.push_span(arrival, worm, index, 1)

    def has_arrived(self, now: int) -> bool:
        """True when :meth:`take` would return a span at cycle ``now``."""
        return (
            self._head != self._tail
            and self._arr[3 * (self._head & self._mask)] <= now
        )

    def take(
        self, now: int, limit: Optional[int] = None
    ) -> Optional[Tuple[Worm, int, int]]:
        """Pop the longest arrived prefix of the oldest span.

        Returns ``(worm, start, count)`` with every member flit arrived
        by ``now`` (capped at ``limit`` flits when given), or ``None``
        when nothing has arrived.  A partially taken span stays queued
        with its ``arrival``/``start`` advanced in place.
        """
        if self._head == self._tail:
            return None
        slot = self._head & self._mask
        base = 3 * slot
        arr = self._arr
        arrival = arr[base]
        if arrival > now:
            return None
        count = arr[base + 2]
        avail = now - arrival + 1
        if avail > count:
            avail = count
        if limit is not None and avail > limit:
            avail = limit
        if avail <= 0:
            return None
        worm = self._worms[slot]
        assert worm is not None
        start = arr[base + 1]
        if avail == count:
            self._worms[slot] = None
            self._head += 1
        else:
            arr[base] = arrival + avail
            arr[base + 1] = start + avail
            arr[base + 2] = count - avail
        self._flits -= avail
        return worm, start, avail

    def _grow(self) -> None:
        """Double capacity, re-laying surviving records out in order."""
        old_arr, old_worms = self._arr, self._worms
        old_mask, head, tail = self._mask, self._head, self._tail
        cap = self._cap * 2
        arr = [0] * (3 * cap)
        worms: List[Optional[Worm]] = [None] * cap
        position = 0
        for record in range(head, tail):
            old_base = 3 * (record & old_mask)
            base = 3 * position
            arr[base] = old_arr[old_base]
            arr[base + 1] = old_arr[old_base + 1]
            arr[base + 2] = old_arr[old_base + 2]
            worms[position] = old_worms[record & old_mask]
            position += 1
        self._cap = cap
        self._mask = cap - 1
        self._arr = arr
        self._worms = worms
        self._head = 0
        self._tail = position
