"""Destination sets represented as immutable bit masks.

The paper's bit-string header encoding is literally an N-bit vector with
bit *i* set when host *i* is a destination; switches decode it by ANDing
the header against per-output-port *reachability* vectors.
:class:`DestinationSet` mirrors that representation: it wraps a Python
integer bitmask, so the simulator's decode step is a single ``&`` — the
same operation the proposed hardware performs — and set algebra on even
1024-host systems stays cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class DestinationSet:
    """An immutable set of host identifiers drawn from ``range(universe)``.

    Parameters
    ----------
    universe:
        System size N; members must lie in ``range(universe)``.
    mask:
        Integer bitmask with bit *i* set when host *i* is a member.

    Examples
    --------
    >>> d = DestinationSet.from_ids(8, [1, 3, 5])
    >>> list(d)
    [1, 3, 5]
    >>> (d & DestinationSet.from_ids(8, [3, 4])).mask
    8
    """

    __slots__ = ("universe", "mask")

    def __init__(self, universe: int, mask: int = 0) -> None:
        if universe <= 0:
            raise ValueError("universe must be positive")
        if mask < 0:
            raise ValueError("mask must be non-negative")
        if mask >> universe:
            raise ValueError(
                f"mask {mask:#x} has members outside universe of {universe}"
            )
        object.__setattr__(self, "universe", universe)
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DestinationSet is immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ids(cls, universe: int, ids: Iterable[int]) -> "DestinationSet":
        """Build a set from an iterable of host ids."""
        mask = 0
        for host in ids:
            if not 0 <= host < universe:
                raise ValueError(f"host {host} outside universe of {universe}")
            mask |= 1 << host
        return cls(universe, mask)

    @classmethod
    def single(cls, universe: int, host: int) -> "DestinationSet":
        """The singleton set {host}."""
        return cls.from_ids(universe, (host,))

    @classmethod
    def full(cls, universe: int) -> "DestinationSet":
        """The broadcast set of every host in the universe."""
        return cls(universe, (1 << universe) - 1)

    @classmethod
    def empty(cls, universe: int) -> "DestinationSet":
        """The empty set over the given universe."""
        return cls(universe, 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return bin(self.mask).count("1")

    def __bool__(self) -> bool:
        return self.mask != 0

    def __contains__(self, host: int) -> bool:
        return 0 <= host < self.universe and bool(self.mask >> host & 1)

    def __iter__(self) -> Iterator[int]:
        mask = self.mask
        host = 0
        while mask:
            if mask & 1:
                yield host
            mask >>= 1
            host += 1

    def is_singleton(self) -> bool:
        """True when the set has exactly one member."""
        return self.mask != 0 and self.mask & (self.mask - 1) == 0

    def lowest(self) -> int:
        """The smallest member; raises :class:`ValueError` when empty."""
        if not self.mask:
            raise ValueError("empty destination set has no lowest member")
        return (self.mask & -self.mask).bit_length() - 1

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DestinationSet") -> None:
        if self.universe != other.universe:
            raise ValueError(
                f"universe mismatch: {self.universe} vs {other.universe}"
            )

    def __and__(self, other: "DestinationSet") -> "DestinationSet":
        self._check_compatible(other)
        return DestinationSet(self.universe, self.mask & other.mask)

    def __or__(self, other: "DestinationSet") -> "DestinationSet":
        self._check_compatible(other)
        return DestinationSet(self.universe, self.mask | other.mask)

    def __sub__(self, other: "DestinationSet") -> "DestinationSet":
        self._check_compatible(other)
        return DestinationSet(self.universe, self.mask & ~other.mask)

    def intersect_mask(self, mask: int) -> "DestinationSet":
        """AND against a raw bitmask (the hardware decode primitive)."""
        return DestinationSet(self.universe, self.mask & mask)

    def issubset(self, other: "DestinationSet") -> bool:
        """True when every member of self is in ``other``."""
        self._check_compatible(other)
        return self.mask & ~other.mask == 0

    def isdisjoint(self, other: "DestinationSet") -> bool:
        """True when self and ``other`` share no member."""
        self._check_compatible(other)
        return self.mask & other.mask == 0

    def without(self, host: int) -> "DestinationSet":
        """The set with one host removed (no-op when absent)."""
        return DestinationSet(self.universe, self.mask & ~(1 << host))

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DestinationSet):
            return NotImplemented
        return self.universe == other.universe and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((self.universe, self.mask))

    def __repr__(self) -> str:
        members = list(self)
        if len(members) > 12:
            head = ", ".join(map(str, members[:12]))
            body = f"{head}, ... ({len(members)} total)"
        else:
            body = ", ".join(map(str, members))
        return f"DestinationSet(N={self.universe}, {{{body}}})"
