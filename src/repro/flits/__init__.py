"""Messages, packets, flits and multidestination header encodings."""

from repro.flits.destset import DestinationSet
from repro.flits.encoding import (
    BitStringEncoding,
    HeaderEncoding,
    MultiportEncoding,
)
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm

__all__ = [
    "BitStringEncoding",
    "DestinationSet",
    "Flit",
    "HeaderEncoding",
    "Message",
    "MultiportEncoding",
    "Packet",
    "TrafficClass",
    "Worm",
]
