"""Messages and packets.

A *message* is what a host asks the network to deliver; a *packet* is the
unit that traverses the network as one worm.  Messages no larger than the
maximum packet payload map to a single packet; larger messages are
segmented.  The deadlock-freedom rule of the paper (a multidestination
packet must be completely bufferable at a switch) bounds the packet size
by the switch buffer size, so segmentation is what lets arbitrarily long
messages ride hardware multicast.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional

from repro.flits.destset import DestinationSet
from repro.flits.encoding import HeaderEncoding


class TrafficClass(enum.Enum):
    """Why a packet exists, for metric attribution."""

    #: ordinary point-to-point traffic
    UNICAST = "unicast"
    #: a hardware multidestination worm
    MULTICAST = "multicast"
    #: a unicast packet that implements one hop of a software multicast
    SW_MULTICAST = "sw_multicast"
    #: a collective-protocol control message (barrier/reduction traffic)
    CONTROL = "control"


class Message:
    """A host-level send request.

    Parameters
    ----------
    message_id:
        Unique id within one simulation (allocated by the host layer).
    source:
        Injecting host id.
    destinations:
        Destination set; a singleton for unicast.
    payload_flits:
        Data flits, excluding routing header.
    traffic_class:
        Attribution class for metrics.
    created_cycle:
        Cycle the workload generated the message (queueing at the host
        counts toward latency, as in the paper's latency definition).
    op_id:
        Identifier of the collective operation this message belongs to,
        shared by every packet of a multicast (hardware or software).
    """

    __slots__ = (
        "message_id",
        "source",
        "destinations",
        "payload_flits",
        "traffic_class",
        "created_cycle",
        "op_id",
        "tag",
    )

    def __init__(
        self,
        message_id: int,
        source: int,
        destinations: DestinationSet,
        payload_flits: int,
        traffic_class: TrafficClass,
        created_cycle: int,
        op_id: Optional[int] = None,
        tag: Optional[object] = None,
    ) -> None:
        if payload_flits < 1:
            raise ValueError("payload_flits must be at least 1")
        if not destinations:
            raise ValueError("a message needs at least one destination")
        if source in destinations:
            raise ValueError("a message may not target its own source")
        self.message_id = message_id
        self.source = source
        self.destinations = destinations
        self.payload_flits = payload_flits
        self.traffic_class = traffic_class
        self.created_cycle = created_cycle
        self.op_id = op_id
        #: protocol metadata (collective engines match deliveries by tag);
        #: models a couple of header bits plus an operation identifier
        self.tag = tag

    def segment(
        self,
        encoding: HeaderEncoding,
        max_payload_flits: int,
        first_packet_id: int,
    ) -> List["Packet"]:
        """Split into packets of at most ``max_payload_flits`` payload.

        Packet ids are allocated contiguously from ``first_packet_id`` so
        the caller can keep a single deterministic id counter.
        """
        if max_payload_flits < 1:
            raise ValueError("max_payload_flits must be at least 1")
        count = math.ceil(self.payload_flits / max_payload_flits)
        packets: List[Packet] = []
        remaining = self.payload_flits
        for index in range(count):
            payload = min(max_payload_flits, remaining)
            remaining -= payload
            packets.append(
                Packet(
                    packet_id=first_packet_id + index,
                    message=self,
                    destinations=self.destinations,
                    header_flits=encoding.header_flits(self.destinations),
                    payload_flits=payload,
                    sequence=index,
                    is_last=index == count - 1,
                )
            )
        return packets

    def __repr__(self) -> str:
        return (
            f"Message(id={self.message_id}, src={self.source}, "
            f"dests={len(self.destinations)}, payload={self.payload_flits}f, "
            f"class={self.traffic_class.value})"
        )


class Packet:
    """One worm: a routing header followed by payload flits.

    The final flit (``size_flits - 1``) is the tail; resources along the
    worm's path are released as the tail drains past them.
    """

    __slots__ = (
        "packet_id",
        "message",
        "destinations",
        "header_flits",
        "payload_flits",
        "sequence",
        "is_last",
        "injected_cycle",
    )

    def __init__(
        self,
        packet_id: int,
        message: Message,
        destinations: DestinationSet,
        header_flits: int,
        payload_flits: int,
        sequence: int = 0,
        is_last: bool = True,
    ) -> None:
        if header_flits < 1:
            raise ValueError("header_flits must be at least 1")
        if payload_flits < 1:
            raise ValueError("payload_flits must be at least 1")
        self.packet_id = packet_id
        self.message = message
        self.destinations = destinations
        self.header_flits = header_flits
        self.payload_flits = payload_flits
        self.sequence = sequence
        self.is_last = is_last
        #: cycle the head flit entered the network; set by the host NI
        self.injected_cycle: Optional[int] = None

    @property
    def size_flits(self) -> int:
        """Total worm length in flits (header + payload)."""
        return self.header_flits + self.payload_flits

    @property
    def source(self) -> int:
        """Injecting host id."""
        return self.message.source

    @property
    def traffic_class(self) -> TrafficClass:
        """Metric attribution class inherited from the message."""
        return self.message.traffic_class

    @property
    def is_multidestination(self) -> bool:
        """True when the worm carries more than one destination."""
        return not self.destinations.is_singleton()

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, msg={self.message.message_id}, "
            f"src={self.source}, dests={len(self.destinations)}, "
            f"{self.size_flits}f)"
        )
