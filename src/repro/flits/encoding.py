"""Header encodings for multidestination worms (paper section 3).

Two encodings from the paper are implemented:

* :class:`BitStringEncoding` — the N-bit vector the paper adopts for its
  switch designs.  Any destination set is covered by a single worm
  (single-phase multicast); the cost is a header that grows linearly with
  system size.
* :class:`MultiportEncoding` — the encoding of the authors' earlier work
  (Sivaram, Panda and Stunkel, SPDP'96, refs [32, 33]).  A worm's header
  carries one port mask per stage, so a single worm covers exactly a
  *product set* of destinations (a cartesian product of digit choices);
  arbitrary sets need multiple phases.  The header is small and decoding
  is trivial, but multicast latency pays for the extra phases.

Both encodings expose the same interface: the size of the header in flits
for a given destination set, and the decomposition of a destination set
into per-phase worm destination sets.  Inside the simulator all worms are
routed from their destination *set* (the hardware's reachability-AND
decode produces identical port decisions for either encoding), so the
encodings differ only in header length and phase count — exactly the
trade-off the paper discusses.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Set, Tuple

from repro.flits.destset import DestinationSet


class HeaderEncoding(ABC):
    """How a multidestination worm names its destinations."""

    #: short identifier used in reports
    name: str = "abstract"

    @abstractmethod
    def header_flits(self, destinations: DestinationSet) -> int:
        """Number of header flits a worm for ``destinations`` carries."""

    @abstractmethod
    def phases(self, destinations: DestinationSet) -> List[DestinationSet]:
        """Split ``destinations`` into per-worm sets, one worm per phase.

        The returned sets are non-empty, pairwise disjoint, and their
        union equals ``destinations``.
        """

    def covers_in_one_phase(self, destinations: DestinationSet) -> bool:
        """True when a single worm can carry the whole set."""
        return len(self.phases(destinations)) <= 1


class BitStringEncoding(HeaderEncoding):
    """N-bit destination vector: single-phase, header grows with N.

    Parameters
    ----------
    num_hosts:
        System size N.
    flit_payload_bits:
        Bits of destination vector one header flit carries.
    control_flits:
        Fixed flits for packet type, length and sequencing information,
        present in every header (also the entire header of a unicast
        packet).
    """

    name = "bitstring"

    def __init__(
        self,
        num_hosts: int,
        flit_payload_bits: int = 16,
        control_flits: int = 1,
    ) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        if flit_payload_bits <= 0:
            raise ValueError("flit_payload_bits must be positive")
        if control_flits < 1:
            raise ValueError("control_flits must be at least 1")
        self.num_hosts = num_hosts
        self.flit_payload_bits = flit_payload_bits
        self.control_flits = control_flits

    def header_flits(self, destinations: DestinationSet) -> int:
        """Control flits plus the destination vector, for multi-destination
        worms; a unicast destination fits in the control flits."""
        if destinations.is_singleton():
            return self.control_flits
        vector_flits = math.ceil(self.num_hosts / self.flit_payload_bits)
        return self.control_flits + vector_flits

    def phases(self, destinations: DestinationSet) -> List[DestinationSet]:
        """Bit-strings address arbitrary sets: always a single phase."""
        if not destinations:
            return []
        return [destinations]


class MultiportEncoding(HeaderEncoding):
    """Per-stage port masks: tiny header, product-set coverage only.

    Hosts are numbered so that host *h* has digit representation
    ``(d_{levels-1}, ..., d_0)`` in base ``arity`` (``arity`` = down-ports
    per switch = k/2 for a k-port switch).  A single worm's header holds
    one ``arity``-bit mask per level; the worm reaches every host whose
    digit at each level is enabled in that level's mask — a cartesian
    product of digit sets.

    Arbitrary destination sets are decomposed greedily into disjoint
    product sets (one phase per product).  The greedy cover is not
    guaranteed minimal (minimal product cover is NP-hard) but matches the
    constructive scheme of ref [32]: start from one destination and grow
    each dimension while the grown product stays inside the uncovered set.
    """

    name = "multiport"

    def __init__(
        self,
        arity: int,
        levels: int,
        flit_payload_bits: int = 16,
        control_flits: int = 1,
    ) -> None:
        if arity < 2:
            raise ValueError("arity must be at least 2")
        if levels < 1:
            raise ValueError("levels must be at least 1")
        if flit_payload_bits <= 0:
            raise ValueError("flit_payload_bits must be positive")
        if control_flits < 1:
            raise ValueError("control_flits must be at least 1")
        self.arity = arity
        self.levels = levels
        self.flit_payload_bits = flit_payload_bits
        self.control_flits = control_flits
        self.num_hosts = arity**levels

    # ------------------------------------------------------------------
    # digit helpers
    # ------------------------------------------------------------------
    def digits(self, host: int) -> Tuple[int, ...]:
        """Digits of ``host`` in base ``arity``, most significant first."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} outside universe {self.num_hosts}")
        out: List[int] = []
        for level in reversed(range(self.levels)):
            out.append(host // self.arity**level % self.arity)
        return tuple(out)

    def host_from_digits(self, digits: Sequence[int]) -> int:
        """Inverse of :meth:`digits`."""
        if len(digits) != self.levels:
            raise ValueError(f"expected {self.levels} digits, got {len(digits)}")
        host = 0
        for digit in digits:
            if not 0 <= digit < self.arity:
                raise ValueError(f"digit {digit} outside arity {self.arity}")
            host = host * self.arity + digit
        return host

    def product_members(self, digit_sets: Sequence[Set[int]]) -> List[int]:
        """Every host in the cartesian product of the given digit sets."""
        hosts = [0]
        for digit_set in digit_sets:
            hosts = [
                h * self.arity + d for h in hosts for d in sorted(digit_set)
            ]
        return hosts

    # ------------------------------------------------------------------
    # HeaderEncoding interface
    # ------------------------------------------------------------------
    def header_flits(self, destinations: DestinationSet) -> int:
        """Control flits plus ``levels`` masks of ``arity`` bits each."""
        if destinations.is_singleton():
            return self.control_flits
        mask_bits = self.levels * self.arity
        return self.control_flits + math.ceil(mask_bits / self.flit_payload_bits)

    def phases(self, destinations: DestinationSet) -> List[DestinationSet]:
        """Greedy disjoint product-set cover of ``destinations``."""
        if destinations.universe != self.num_hosts:
            raise ValueError(
                f"destination universe {destinations.universe} does not match "
                f"encoding universe {self.num_hosts}"
            )
        remaining = set(destinations)
        out: List[DestinationSet] = []
        while remaining:
            seed = min(remaining)
            digit_sets: List[Set[int]] = [{d} for d in self.digits(seed)]
            grown = True
            while grown:
                grown = False
                for level in range(self.levels):
                    for candidate in range(self.arity):
                        if candidate in digit_sets[level]:
                            continue
                        trial = [set(s) for s in digit_sets]
                        trial[level].add(candidate)
                        members = self.product_members(trial)
                        if all(m in remaining for m in members):
                            digit_sets = trial
                            grown = True
            members = self.product_members(digit_sets)
            remaining.difference_update(members)
            out.append(DestinationSet.from_ids(self.num_hosts, members))
        return out

    def is_product_set(self, destinations: DestinationSet) -> bool:
        """True when a single worm covers ``destinations``."""
        if not destinations:
            return False
        digit_sets: List[Set[int]] = [set() for _ in range(self.levels)]
        for host in destinations:
            for level, digit in enumerate(self.digits(host)):
                digit_sets[level].add(digit)
        product_size = 1
        for digit_set in digit_sets:
            product_size *= len(digit_set)
        return product_size == len(destinations)
