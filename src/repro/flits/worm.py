"""Worm instances: one replicated branch of a packet in flight.

When a switch replicates a multidestination packet, each branch's header
is rewritten to the subset of destinations that branch is responsible for
(the bit-string ANDed with the output port's reachability register, as in
the paper).  :class:`Worm` models one such branch: it shares the
underlying :class:`~repro.flits.packet.Packet` (the data) but carries its
own *effective destination set* (the rewritten header).  The worm injected
by the source host is the root; every replication creates child worms.
"""

from __future__ import annotations

from typing import Optional

from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Packet, TrafficClass


class Worm:
    """One branch of a packet, with its rewritten destination header."""

    __slots__ = (
        "packet",
        "destinations",
        "parent",
        "descending",
        "size_flits",
        "header_flits",
    )

    def __init__(
        self,
        packet: Packet,
        destinations: DestinationSet,
        parent: Optional["Worm"] = None,
        descending: bool = False,
    ) -> None:
        if not destinations:
            raise ValueError("a worm must carry at least one destination")
        if not destinations.issubset(packet.destinations):
            raise ValueError(
                "worm destinations must be a subset of the packet's"
            )
        self.packet = packet
        self.destinations = destinations
        self.parent = parent
        #: True once the worm has turned around at (or below) the LCA and
        #: is travelling toward the leaves; switches use this to restrict
        #: routing to down-ports, matching the arrival-link direction the
        #: hardware infers.
        self.descending = descending
        #: worm length in flits, cached from the packet (hot path)
        self.size_flits = packet.size_flits
        #: header length in flits, cached from the packet (hot path)
        self.header_flits = packet.header_flits

    @classmethod
    def root(cls, packet: Packet) -> "Worm":
        """The worm injected at the source, carrying the full header."""
        return cls(packet, packet.destinations)

    def branch(self, destinations: DestinationSet, descending: bool) -> "Worm":
        """Create a child branch carrying ``destinations``."""
        return Worm(packet=self.packet, destinations=destinations,
                    parent=self, descending=descending)

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def source(self) -> int:
        """Injecting host id."""
        return self.packet.source

    @property
    def traffic_class(self) -> TrafficClass:
        """Metric attribution class."""
        return self.packet.traffic_class

    @property
    def is_multidestination(self) -> bool:
        """True when this branch still targets more than one host."""
        return not self.destinations.is_singleton()

    def flit(self, index: int) -> Flit:
        """The flit at ``index`` of this branch."""
        return Flit(self, index)

    def __repr__(self) -> str:
        return (
            f"Worm(pkt={self.packet.packet_id}, dests={len(self.destinations)}, "
            f"{'down' if self.descending else 'up'})"
        )
